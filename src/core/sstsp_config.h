// SSTSP protocol parameters (paper §3, defaults from §5 where stated).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

namespace sstsp::core {

/// Clock-discipline selection + estimator knobs (core/discipline.h).  One
/// nested config block ("discipline" in the universal --config schema)
/// covers the estimator name and every parameter the estimators share with
/// the paper solver (span, slope clamp).
struct DisciplineConfig {
  /// Factory-registered estimator name ("paper", "rls", "holdover"); empty
  /// selects the paper-faithful span solver, the bit-identical default.
  std::string name{};

  /// RLS: authenticated-beacon history window.  Deeper windows keep the
  /// regression conditioned across droughts; the deque capacity and the
  /// epoch age-out horizon both derive from it (discipline.h).
  int window_bps = 16;

  /// RLS: forgetting factor lambda in (0, 1]; 1 never forgets, smaller
  /// values track temperature/aging-induced rate changes faster.
  double forgetting = 0.90;

  /// RLS: innovation gate — a sample whose prediction residual exceeds
  /// this (after the estimator has primed) is screened out instead of
  /// corrupting the fit.  0 disables gating.
  double innovation_gate_us = 200.0;

  /// Holdover: a remembered drift rate older than this many beacon
  /// periods is too stale to coast on.
  int holdover_max_age_bps = 32;

  [[nodiscard]] bool configured() const { return !name.empty(); }
  [[nodiscard]] std::string_view effective_name() const {
    return name.empty() ? std::string_view("paper") : std::string_view(name);
  }
};

struct SstspConfig {
  /// Aggressiveness m (> 0): the adjusted clock is solved to converge onto
  /// the reference at the expected time of beacon j+m.  Paper Table 1
  /// sweeps m = 1..5 and finds m = 2..3 the best accuracy/latency trade-off.
  int m = 3;

  /// Missed-beacon tolerance l: a node contends for the reference role
  /// after hearing no beacon for l consecutive BPs (paper §3.3; §5 uses 1).
  int l = 1;

  /// Fine-phase guard time delta: beacons whose timestamp differs from the
  /// local adjusted clock by more than the *effective* guard are rejected
  /// (§3.3 step 3).  The effective guard is
  ///
  ///     guard_fine_us + guard_growth_us_per_s * (time since this node
  ///                             last synchronized: a successful (k, b)
  ///                             adjustment, a coarse step, or — for the
  ///                             reference — its own emission)
  ///
  /// capped at guard_coarse_us.  The growth term is the physical bound on
  /// how far two +/-100 ppm clocks can drift apart per second of silence
  /// (the paper's own premise: "the difference between any two clocks
  /// cannot drift unboundedly within a certain period of time"); without
  /// it, re-election after a reference departure would reject legitimate
  /// beacons from drifted-but-honest successors.  An attacker cannot
  /// exploit the growth without first suppressing the reference (jamming,
  /// out of scope per §4).
  /// The base must exceed twice the worst-case calibration offset of a
  /// boot-time node (±112 us in the paper's setup), or freshly booted
  /// networks reject their first elected reference and fragment.
  double guard_fine_us = 300.0;
  double guard_growth_us_per_s = 220.0;

  /// Coarse-phase guard (loose by design, §3.3): bounds the offset samples
  /// a (re)joining node will consider.  Must absorb drift over the longest
  /// expected absence (50 s at +/-100 ppm is 10 ms relative).
  double guard_coarse_us = 20000.0;

  /// Tolerance added to the µTESLA interval check (residual sync error +
  /// propagation + processing); still orders of magnitude below BP/2.
  double interval_slack_us = 2000.0;

  /// Beacon periods a (re)joining node spends scanning before it steps its
  /// clock (coarse synchronization phase).
  int coarse_scan_bps = 8;

  /// Outlier handling in the coarse phase: GESD (Song-Zhu-Cao) runs first
  /// when enough samples exist, then the threshold filter.
  bool coarse_use_gesd = true;
  std::size_t gesd_max_outliers = 3;
  double gesd_alpha = 0.05;

  /// One-way hash chain length (must cover the deployment's lifetime in
  /// BPs; 12'000 covers the paper's 1000 s runs with margin).
  std::size_t chain_length = 12000;

  /// Shared schedule origin T0 (published at network formation).
  double t0_us = 0.0;

  /// Intervals a contention winner keeps contending (random slot, normal
  /// deference) before assuming the no-delay reference role.  Breaks the
  /// two-simultaneous-winners livelock; see DESIGN.md §"contention".
  int confirm_bps = 2;

  /// Election backoff: the contention window starts at the TSF value and
  /// doubles for every consecutive unresolved election round (DCF-style),
  /// capped below.  The paper's contention description does not specify
  /// collision resolution; without this, a 500-node election never
  /// terminates (all nodes redraw from 31 slots every BP).
  int election_cw_min = 30;
  int election_cw_max = 1023;

  /// Sanity clamp on the solved slope; a solve outside this band is
  /// rejected (keeps monotonicity under pathological inputs).
  double k_min = 0.95;
  double k_max = 1.05;

  /// Target baseline, in authenticated beacons, between the two samples the
  /// (k, b) solve uses.  1 reproduces the paper's consecutive-beacon solve.
  /// A real datagram path adds delivery jitter to every arrival estimate;
  /// over a single BP that noise is the same order as the drift being
  /// measured, so the solved slope swings by O(jitter / BP) and a node that
  /// then loses a few beacons coasts away at that bogus rate.  Solving
  /// against an older sample divides the jitter-induced slope error by the
  /// span.  The live transports (net::NodeConfig / net::SwarmConfig)
  /// default this to 8; the simulator keeps 1 (its propagation delay is
  /// exactly compensated, so there is nothing to average out).
  int solver_span_bps = 1;

  /// Recovery extension (paper §3.4 future work: "sending an alert and
  /// eliminating the attackers from the network").  When > 0, a sender
  /// whose beacons fail the guard/interval/MAC checks this many times in a
  /// row is locally blacklisted for `blacklist_penalty_s`: its frames are
  /// dropped before any processing, so a detected rogue cannot keep a
  /// victim's election machinery suppressed or its buffers busy.  0 keeps
  /// the paper's detect-and-discard-only behaviour (the default).
  int blacklist_threshold = 0;
  double blacklist_penalty_s = 30.0;

  /// Clock-discipline selection (see DisciplineConfig above).  Default —
  /// an empty name — is the paper span solver with bit-identical seeded
  /// output; see DESIGN.md §14 for the bit-compatibility contract.
  DisciplineConfig discipline{};
};

/// Guard-time threshold in force `hw_now_us - last_sync_hw_us` after the
/// last piece of sync evidence: base fine guard plus the physical drift
/// bound per second of silence, capped at the coarse guard.  Shared by the
/// single-hop protocol, the multi-hop relay and the cluster bridge so the
/// §3.3 check cannot diverge between layers.
[[nodiscard]] inline double effective_guard_us(const SstspConfig& cfg,
                                               double hw_now_us,
                                               double last_sync_hw_us) {
  const double silence_s = std::max(0.0, (hw_now_us - last_sync_hw_us) * 1e-6);
  const double guard =
      cfg.guard_fine_us + cfg.guard_growth_us_per_s * silence_s;
  return std::min(guard, cfg.guard_coarse_us);
}

}  // namespace sstsp::core
