// The SSTSP clock-adjustment solver (paper §3.3, equations 2-5).
//
// On each authenticated reference beacon, a node re-solves the adjusted
// clock c(t) = k t + b from four constraints:
//
//   (2) continuity at the current instant:  k' t_now + b' = k t_now + b
//   (3) convergence onto the reference at the expected arrival of beacon
//       j+m:  k t* + b = ts*          (t* = expected local hw time of it)
//   (4) linearity: the local-hw-vs-reference rate measured from the last
//       two authenticated beacons extrapolates to t*
//   (5) the reference emits on schedule: ts* = T^{j+m} = T0 + (j+m) BP
//
// Closed form (equivalent to the paper's displayed k^j, b^j):
//
//   R  = (t_a - t_b) / (ts_a - ts_b)          — hw ticks per reference tick
//   t* = t_a + R (T^{j+m} - ts_a)
//   k  = (T^{j+m} - c_old(t_now)) / (t* - t_now)
//   b  = c_old(t_now) - k t_now
//
// where (t_a, ts_a) and (t_b, ts_b) are the newest and next-newest
// authenticated (local-arrival, estimated-reference-time) samples.
// tests/core_adjustment_test.cpp verifies this form satisfies (2)-(5) and
// matches the paper's printed fraction symbolically for random inputs.
#pragma once

#include <optional>

#include "core/sstsp_config.h"

namespace sstsp::core {

/// One authenticated reference observation.
struct RefSample {
  double t_local_us{0};  ///< local *hardware* clock at beacon arrival
  double ts_ref_us{0};   ///< estimated reference adjusted time at arrival
};

struct ClockParams {
  double k{1.0};
  double b{0.0};

  [[nodiscard]] double eval(double t_us) const { return k * t_us + b; }
};

/// The one typed outcome vocabulary of a clock-discipline proposal: why a
/// proposal was applied or rejected.  Shared by every discipline (the
/// paper span solver, RLS, holdover), the run-JSON summary and the metric
/// counters, so "solver rejection" means the same thing everywhere.
enum class DisciplineVerdict {
  kApplied = 0,            ///< params proposed from fresh evidence
  kNonIncreasingSamples,   ///< ts_a <= ts_b or t_a <= t_b
  kTargetNotAhead,         ///< expected convergence instant not in the future
  kSlopeOutOfRange,        ///< solved k outside [k_min, k_max]
  kInsufficientHistory,    ///< not enough usable samples to propose yet
  kInnovationRejected,     ///< sample screened out by innovation gating
  kHoldoverCoast,          ///< params proposed from a remembered drift rate
};

inline constexpr std::size_t kDisciplineVerdictCount = 7;

[[nodiscard]] const char* to_string(DisciplineVerdict verdict);

/// Verdicts that reject a *proposal* (counted as solver_rejections).
/// kInsufficientHistory merely means "no evidence yet" and
/// kInnovationRejected screens a single sample, not a proposal.
[[nodiscard]] constexpr bool verdict_is_rejection(DisciplineVerdict v) {
  return v == DisciplineVerdict::kNonIncreasingSamples ||
         v == DisciplineVerdict::kTargetNotAhead ||
         v == DisciplineVerdict::kSlopeOutOfRange;
}

struct DisciplineResult {
  std::optional<ClockParams> params;  // nullopt unless the verdict applied
  DisciplineVerdict verdict{DisciplineVerdict::kApplied};
  double expected_t_star_us{0};  // diagnostic: t* from (4)

  [[nodiscard]] bool applied() const { return params.has_value(); }
};

/// Solves (k^j, b^j).  `target_us` is T^{j+m}; `t_now_us` is the local
/// hardware clock at the adjustment instant (the paper's t_i^j).
[[nodiscard]] DisciplineResult solve_adjustment(const ClockParams& previous,
                                                double t_now_us,
                                                const RefSample& newest,
                                                const RefSample& older,
                                                double target_us,
                                                const SstspConfig& cfg);

/// The paper's printed closed form for k^j (the big displayed fraction in
/// §3.3), kept verbatim for cross-checking the derivation above.  Inputs
/// map as: t_i^j = t_now, (t_i^{j-1}, ts_ref^{j-1}) = newest,
/// (t_i^{j-2}, ts_ref^{j-2}) = older, T^{j+m} = target.
[[nodiscard]] double paper_k_formula(const ClockParams& previous,
                                     double t_now_us, const RefSample& newest,
                                     const RefSample& older, double target_us);

/// Same for b^j.
[[nodiscard]] double paper_b_formula(const ClockParams& previous,
                                     double t_now_us, const RefSample& newest,
                                     const RefSample& older, double target_us);

}  // namespace sstsp::core
