// SSTSP — the paper's Scalable Secure Time Synchronization Procedure.
//
// State machine per node:
//
//   kCoarse       (re)joining: scan beacons, filter offsets, step once.
//   kFollower     synchronized operation: verify beacons through the µTESLA
//                 pipeline, guard-check timestamps, re-solve (k, b) on every
//                 authenticated beacon; contend for the reference role after
//                 l silent BPs.
//   kTentativeRef won a contention round; keeps contending politely for
//                 `confirm_bps` intervals to flush simultaneous winners.
//   kReference    emits a secured beacon at the start of every BP (its
//                 adjusted time T^j = T0 + j*BP) with no random delay.
//
// Role hand-off rule ("RULE R" in DESIGN.md): a (tentative) reference that
// observes a valid beacon transmitted *earlier than its own* in the current
// interval demotes itself — this is how a departed reference's successor
// stabilizes, and how the internal attacker of §5 seizes the role.
//
// Election collision resolution: the paper reuses TSF's contention but does
// not specify what happens when hundreds of re-contending nodes collide
// repeatedly; we apply DCF-style window doubling per unresolved round
// (cfg.election_cw_min/max).  See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "clock/adjusted_clock.h"
#include "core/adjustment.h"
#include "core/beacon_security.h"
#include "core/discipline.h"
#include "core/coarse_sync.h"
#include "core/key_directory.h"
#include "core/sstsp_config.h"
#include "protocols/station.h"
#include "protocols/sync_protocol.h"

namespace sstsp::core {

class Sstsp : public proto::SyncProtocol {
 public:
  enum class State { kCoarse, kFollower, kTentativeRef, kReference };

  struct Options {
    /// Boot-time nodes are assumed pre-calibrated (paper: coarse sync "can
    /// also be achieved by calibration when a node joins"); they skip the
    /// scanning phase.  Churn returners must not set this.
    bool calibrated_boot = true;
    /// Skip the initial election and start in the reference role (used by
    /// experiments that isolate convergence behaviour, e.g. Table 1).
    bool start_as_reference = false;
    /// Broadcast domain this instance lives in: outgoing beacons are stamped
    /// with it and frames from any other domain are ignored before the §3.3
    /// checks (the BSSID filter).  0 — the default — reproduces the
    /// original single-domain behaviour bit-for-bit.
    std::uint8_t domain = 0;
    /// Listen-only instance: synchronizes to the domain's reference like
    /// any follower but never contends for the role and never transmits.
    /// A gateway's uplink half uses this so its (single) µTESLA chain is
    /// only ever spent on its home-cluster schedule.
    bool passive = false;
    /// Reference busy-deferral: when the medium is busy at the no-delay
    /// slot, retry up to this many times (busy_retry_step_us apart) before
    /// giving the interval up.  Single-domain SSTSP never needs it — no
    /// honest transmitter shares slot 0 — but in multi-domain runs the
    /// schedules of independently drifting references slide through each
    /// other, and skipping l+1 intervals in a row would trigger a spurious
    /// election storm.  0 reproduces the original skip behaviour.
    int busy_retries = 0;
    double busy_retry_step_us = 250.0;
  };

  Sstsp(proto::Station& station, const SstspConfig& cfg,
        KeyDirectory& directory, Options options);

  void start() override;
  void stop() override;
  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override;

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return adjusted_.read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override {
    return synced_ && state_ != State::kCoarse;
  }
  [[nodiscard]] bool is_reference() const override {
    return state_ == State::kReference || state_ == State::kTentativeRef;
  }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const clk::AdjustedClock& adjusted() const {
    return adjusted_;
  }
  [[nodiscard]] mac::NodeId current_reference() const { return current_ref_; }
  [[nodiscard]] const SstspConfig& config() const { return cfg_; }

  /// Recovery extension: is this sender currently locally blacklisted?
  [[nodiscard]] bool is_blacklisted(mac::NodeId sender) const;

 protected:
  // ---- attacker hooks (see attack/internal_reference.h) ----------------
  /// Microseconds before the nominal schedule to start emitting (a rogue
  /// reference emits early so the honest one defers to it).
  [[nodiscard]] virtual double emission_advance_us() const { return 0.0; }
  /// Skew added to outgoing timestamps (an internal attacker lies slow).
  [[nodiscard]] virtual double timestamp_skew_us() const { return 0.0; }
  /// Malicious emitters ignore carrier sense.
  [[nodiscard]] virtual bool ignore_carrier() const { return false; }
  /// Malicious references never yield the role.
  [[nodiscard]] virtual bool never_demote() const { return false; }

  /// Forces the reference role (attacker takeover); resets confirmation.
  void force_reference_role();
  /// Forces demotion back to follower.
  void force_follower_role();
  /// Drops fine-grained state and re-enters the coarse scanning phase
  /// ("restart the synchronization procedure", §3.4).
  void restart_coarse();

  [[nodiscard]] double adjusted_now() const {
    return adjusted_.read_us(station_.sim().now());
  }
  [[nodiscard]] std::int64_t current_interval() const {
    return schedule_.interval_of(adjusted_now());
  }

  /// Guard-time threshold in force right now (base + drift growth since
  /// the last accepted beacon, capped by the coarse guard).
  [[nodiscard]] double effective_guard_us(double hw_now_us) const;

 private:
  struct SenderTrack {
    SenderTrack(crypto::Digest anchor, crypto::MuTeslaSchedule schedule,
                crypto::VerifyCache* cache,
                std::unique_ptr<ClockDiscipline> disc)
        : pipeline(anchor, schedule, cache), discipline(std::move(disc)) {}
    SenderPipeline pipeline;
    /// Per-sender clock discipline (core/discipline.h): owns the
    /// authenticated sample history and the (k, b) estimator.
    std::unique_ptr<ClockDiscipline> discipline;
    int consecutive_rejections{0};
    double blacklisted_until_hw_us{-1.0};
  };

  void schedule_tick();
  void handle_tick(std::int64_t j);
  void arm_contention(std::int64_t j, int window);
  void handle_contention_expiry(std::int64_t j);
  void schedule_reference_emission(std::int64_t j);
  void handle_reference_emission(std::int64_t j);
  void transmit_beacon(std::int64_t j);
  void finish_coarse();
  /// `trace_id` is the lifecycle ID of the just-authenticated beacon the
  /// adjustment derives from (µTESLA defers auth by one interval, so this
  /// is the *previous* interval's transmission, not the one delivering it).
  void try_adjust(SenderTrack& track, std::int64_t cur_interval,
                  std::uint64_t trace_id);
  SenderTrack* track_for(mac::NodeId sender);
  void note_rejection(mac::NodeId sender, double hw_now_us);
  /// Books a discipline verdict: per-verdict stats array, the legacy
  /// solver_rejections aggregate, and (when enabled) the metric counters.
  void note_verdict(DisciplineVerdict verdict);
  void cancel_tx_event();

  SstspConfig cfg_;
  KeyDirectory& directory_;
  crypto::MuTeslaSchedule schedule_;
  clk::AdjustedClock adjusted_;
  BeaconSigner signer_;
  Options options_;

  State state_{State::kCoarse};
  bool running_{false};
  bool synced_{false};

  std::unordered_map<mac::NodeId, SenderTrack> tracks_;
  mac::NodeId current_ref_{mac::kNoNode};
  std::int64_t last_accepted_interval_{-1};
  std::int64_t last_tx_interval_{-1};
  std::int64_t last_tick_j_{INT64_MIN};
  double last_sync_hw_us_{0.0};  // hw clock at last sync evidence
  sim::SimTime last_tx_start_{sim::SimTime::never()};
  int missed_{0};
  int election_cw_;
  int confirm_left_{0};
  int coarse_bps_seen_{0};
  int resync_adjustments_{0};  // fine adjustments since leaving coarse
  bool started_before_{false};

  CoarseSync coarse_;

  sim::EventId tick_event_{0};
  sim::EventId tx_event_{0};
  int emission_retries_left_{0};
};

}  // namespace sstsp::core
