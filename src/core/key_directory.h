// Trusted anchor directory.
//
// The paper assumes each node's final hash-chain element h^n(s_i) is
// distributed authentically (by public-key signature, symmetric-key scheme
// [11], or imprinting [12]) before the protocol runs; the distribution
// mechanism itself is explicitly out of scope.  We model it as a shared
// directory populated at network formation — see DESIGN.md "Substitutions".
//
// Anchors are computed lazily: registering a node stores only its chain
// parameters, and the n-hash anchor derivation runs the first time someone
// looks the node up (only nodes that ever transmit get looked up).
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "crypto/hash_chain.h"
#include "crypto/verify_cache.h"
#include "mac/phy_params.h"

namespace sstsp::core {

class KeyDirectory {
 public:
  /// Registers a node's chain.  Idempotent per node id.
  void register_node(mac::NodeId id, const crypto::ChainParams& chain) {
    entries_.emplace(id, Entry{chain, std::nullopt});
  }

  [[nodiscard]] bool known(mac::NodeId id) const {
    return entries_.contains(id);
  }

  /// The published anchor h^n(s_id); nullopt for unknown nodes.
  [[nodiscard]] std::optional<crypto::Digest> anchor_of(mac::NodeId id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    if (!it->second.anchor) it->second.anchor = it->second.chain.anchor();
    return it->second.anchor;
  }

  /// Chain parameters (used by the owning node to build its signer).
  [[nodiscard]] std::optional<crypto::ChainParams> chain_of(
      mac::NodeId id) const {
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    return it->second.chain;
  }

  /// Network-shared memo for pure µTESLA verification results.  One cache
  /// per directory (= per run::Network); run_sweep workers each build their
  /// own network, so this is never shared across threads.
  [[nodiscard]] crypto::VerifyCache& verify_cache() { return verify_cache_; }

 private:
  struct Entry {
    crypto::ChainParams chain;
    std::optional<crypto::Digest> anchor;
  };
  std::unordered_map<mac::NodeId, Entry> entries_;
  crypto::VerifyCache verify_cache_;
};

}  // namespace sstsp::core
