// Pluggable clock disciplines: authenticated RefSamples in, ClockParams out.
//
// The paper re-solves the two adjusted-clock parameters (k, b) from the two
// most recent authenticated beacons (§3.3, eq. 2-5) — a 2-point solve that
// swings hard under timestamp quantization, delivery jitter and sparse
// evidence.  A ClockDiscipline owns exactly that decision: it observes the
// per-sender stream of authenticated (local-hw, reference-time) samples and,
// on request, proposes new ClockParams with a typed DisciplineVerdict.  The
// protocol state machine (core/sstsp.cpp) stays estimator-agnostic: it feeds
// samples, asks for proposals, applies the ones that carry params.
//
// Registered disciplines:
//
//   "paper"     the §3.3 span solver (core/adjustment.h), the default.
//               Bit-compatibility contract: with discipline unset *or set to
//               "paper"*, every solved (k, b), every counter and every byte
//               of seeded run output is identical to the pre-API protocol
//               (tests/discipline_golden_test.cpp pins this).
//   "rls"       recursive least squares over a deeper sample window with a
//               forgetting factor and innovation gating, after the Newton
//               adaptive tracker of arXiv:1810.05837.  Fits (offset, drift,
//               drift rate) jointly and Newton-solves the target crossing,
//               so quantization noise averages out across the window and the
//               fit does not lag a thermal drift ramp.
//   "holdover"  the paper solver plus drift-rate memory: when a beacon
//               drought leaves a single fresh sample, it coasts on the last
//               fitted rate instead of waiting for a second beacon.
//
// Sample-history ownership: the deque the protocol used to keep per sender
// lives in the discipline base class now.  Capacity and the epoch age-out
// horizon both derive from the discipline's declared window W: W+1 samples
// are retained and an entry older than (W + kEpochGapSlackBps) beacon
// periods behind the newest is treated as a previous clock epoch and
// dropped — RLS asks for deeper history without touching protocol code.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/adjustment.h"
#include "obs/json.h"

namespace sstsp::core {

/// Beacon periods past the declared window before a sample counts as a
/// previous clock epoch (a healed partition, a returned contender) rather
/// than usable history.
inline constexpr double kEpochGapSlackBps = 4.0;

class ClockDiscipline {
 public:
  virtual ~ClockDiscipline() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Declared history window W in authenticated beacons: W+1 samples are
  /// retained, entries aging past (W + kEpochGapSlackBps) BPs are dropped.
  [[nodiscard]] virtual int history_window_bps() const = 0;

  /// Samples required before propose() can be asked at all.
  [[nodiscard]] virtual std::size_t min_samples() const { return 2; }

  /// Feeds one authenticated sample (newest) and prunes history to the
  /// declared window; `bp_us` is the beacon period.  Returns a verdict only
  /// when the discipline screened the sample out (e.g. innovation gating) —
  /// the sample still enters the history deque either way.
  std::optional<DisciplineVerdict> add_sample(const RefSample& sample,
                                              double bp_us);

  /// Proposes new ClockParams for convergence at `target_us` (the paper's
  /// T^{j+m}).  `t_now_us` is the local hardware clock at the adjustment
  /// instant.  Call only when size() >= min_samples().
  [[nodiscard]] virtual DisciplineResult propose(const ClockParams& previous,
                                                 double t_now_us,
                                                 double target_us) = 0;

  /// Drops all history and estimator state (coarse restart, epoch change).
  void reset();

  [[nodiscard]] const std::deque<RefSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

 protected:
  /// Estimator ingest hook; runs after `sample` is appended and the deque
  /// pruned.  Return a verdict to report the sample as screened out.
  virtual std::optional<DisciplineVerdict> on_sample(
      const RefSample& /*sample*/) {
    return std::nullopt;
  }
  /// The age-out prune just dropped samples from a previous clock epoch;
  /// samples() holds the survivors (newest included).
  virtual void on_epoch_break() {}
  virtual void on_reset() {}

  std::deque<RefSample> samples_;  // newest at back
  double last_bp_us_{0.0};         // beacon period seen by add_sample
};

/// Builds the discipline selected by cfg.discipline (default: "paper").
/// The returned object keeps a reference to `cfg`, which must outlive it —
/// core::Sstsp owns both.
[[nodiscard]] std::unique_ptr<ClockDiscipline> make_discipline(
    const SstspConfig& cfg);

/// Factory registry introspection (CLI validation, --help text).
[[nodiscard]] bool discipline_known(std::string_view name);
[[nodiscard]] const std::vector<std::string_view>& discipline_names();

/// Counter/JSON names for each DisciplineVerdict, indexed by its value.
[[nodiscard]] const std::vector<std::string>& discipline_verdict_names();

/// Is `key` valid inside the nested "discipline" config block?
[[nodiscard]] bool discipline_param_key_known(std::string_view key);

/// Applies a parsed "discipline" JSON object (or name string) onto `cfg`:
/// {"name": "rls", "span": 8, "k-min": 0.95, "k-max": 1.05, "window": 16,
///  "forgetting": 0.9, "innovation-gate": 200, "holdover-max-age": 32}.
/// Unknown or ill-typed keys fail with the nested path in *error
/// ("unknown config key 'discipline.<key>'").
[[nodiscard]] bool apply_discipline_json(const obs::json::Value& value,
                                         SstspConfig* cfg,
                                         std::string* error);

}  // namespace sstsp::core
