#include "core/coarse_sync.h"

#include "filter/gesd.h"
#include "filter/threshold_filter.h"

namespace sstsp::core {

std::optional<double> CoarseSync::estimate(std::size_t* rejected_out) const {
  if (offsets_.empty()) return std::nullopt;
  std::size_t rejected = 0;

  std::vector<double> candidates = offsets_;
  if (cfg_->coarse_use_gesd && candidates.size() >= 5) {
    const std::size_t before = candidates.size();
    candidates =
        filter::gesd_filter(candidates, cfg_->gesd_max_outliers,
                            cfg_->gesd_alpha);
    rejected += before - candidates.size();
  }

  const filter::ThresholdResult thr =
      filter::threshold_filter(candidates, cfg_->guard_coarse_us);
  rejected += thr.rejected;
  if (rejected_out != nullptr) *rejected_out = rejected;
  return thr.mean();
}

}  // namespace sstsp::core
