#include "core/beacon_security.h"

#include "crypto/hash_chain.h"

namespace sstsp::core {

PipelineResult SenderPipeline::ingest(const mac::SstspBeaconBody& body,
                                      mac::NodeId sender, double arrival_hw_us,
                                      double ts_est_us,
                                      std::uint64_t trace_id) {
  PipelineResult result;
  const std::int64_t j = body.interval;

  if (j == 1) {
    // The first interval's beacon discloses v_n (the anchor itself), which
    // authenticates nothing; accept the frame into the buffer so interval 2
    // can authenticate it.
    result.key_valid = true;
  } else {
    result.key_valid = verifier_.verify_key(j - 1, body.disclosed_key);
    if (!result.key_valid) return result;  // suspect frame: do not buffer

    // Step 3: authenticate the newest stored beacon K_{j-1} can vouch for.
    // A lost interval does not orphan its predecessor: the chain element
    // for an older stored interval i is derivable from the fresh
    // disclosure as H^{(j-1)-i}(K_{j-1}), so a buffered beacon survives
    // the loss of the very next disclosure (µTESLA's loss tolerance).
    // The walk is capped at the buffer horizon: a beacon that sat
    // unauthenticated for longer carries a timestamp from a long-gone
    // clock epoch (e.g. a one-off contention frame of a node that rarely
    // transmits), and feeding it to the solver as a "fresh" sample swings
    // the slope by orders of magnitude.  Too-old entries are purged.
    constexpr std::int64_t kMaxAuthWalk = 2;
    while (!buffer_.empty() &&
           buffer_.front().interval + kMaxAuthWalk < j - 1) {
      buffer_.pop_front();
    }
    for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) {
      const StoredBeacon& stored = *it;
      if (stored.interval >= j) continue;
      const auto distance =
          static_cast<std::size_t>((j - 1) - stored.interval);
      const crypto::Digest key =
          distance == 0 ? body.disclosed_key
                        : crypto::hash_times(body.disclosed_key, distance);
      const auto bytes = mac::serialize_unsecured_beacon(
          stored.timestamp_us, sender, stored.level);
      if (verifier_.check_mac(
              key, stored.interval,
              std::span<const std::uint8_t>(bytes.data(), bytes.size()),
              stored.mac)) {
        result.authenticated = PipelineResult::Authenticated{
            stored.interval, stored.arrival_hw_us, stored.ts_est_us,
            stored.level, stored.trace_id};
      } else {
        result.mac_failed = true;
      }
      // Consume the checked beacon and everything older: an entry must
      // never authenticate twice (it would feed the solver a duplicate
      // sample), and anything older is a strictly staler sample anyway.
      buffer_.erase(buffer_.begin(), it.base());
      break;
    }
  }

  // Buffer this beacon for authentication next interval; keep 2 intervals.
  buffer_.push_back(StoredBeacon{j, body.timestamp_us, body.level, body.mac,
                                 arrival_hw_us, ts_est_us, trace_id});
  while (buffer_.size() > 2) buffer_.pop_front();
  return result;
}

mac::SstspBeaconBody BeaconSigner::sign(std::int64_t j,
                                        std::int64_t timestamp_us,
                                        mac::NodeId sender,
                                        std::uint8_t level) {
  if (!signer_) signer_.emplace(chain_, schedule_);

  mac::SstspBeaconBody body;
  body.timestamp_us = timestamp_us;
  body.interval = j;
  body.level = level;
  const auto bytes =
      mac::serialize_unsecured_beacon(timestamp_us, sender, level);
  body.mac = signer_->mac(
      j, std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  body.disclosed_key = signer_->disclosed_key(j);
  return body;
}

}  // namespace sstsp::core
