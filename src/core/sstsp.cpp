#include "core/sstsp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

#include "obs/profiler.h"

namespace sstsp::core {

namespace {
/// Fraction of a BP after the nominal emission time at which the
/// end-of-interval bookkeeping tick runs (late enough that the interval's
/// beacon, if any, has been delivered and processed).
constexpr double kTickFraction = 0.75;
}  // namespace

Sstsp::Sstsp(proto::Station& station, const SstspConfig& cfg,
             KeyDirectory& directory, Options options)
    : SyncProtocol(station),
      cfg_(cfg),
      directory_(directory),
      schedule_{cfg.t0_us, station.channel().phy().beacon_period.to_us(),
                cfg.chain_length},
      adjusted_(&station.hw()),
      signer_(directory.chain_of(station.id()).value(), schedule_),
      options_(options),
      election_cw_(cfg.election_cw_min),
      coarse_(cfg_) {}

void Sstsp::start() {
  running_ = true;
  tracks_.clear();
  coarse_.reset();
  coarse_bps_seen_ = 0;
  missed_ = 0;
  last_accepted_interval_ = -1;
  last_tx_interval_ = -1;
  last_tick_j_ = INT64_MIN;
  election_cw_ = cfg_.election_cw_min;
  confirm_left_ = 0;
  current_ref_ = mac::kNoNode;
  last_sync_hw_us_ = station_.hw_us_now();

  if (options_.start_as_reference && !options_.passive && !started_before_) {
    state_ = State::kReference;
    synced_ = true;
    // A preestablished reference is a legitimate role acquisition (the
    // experiment's stand-in for an already-completed election).
    if (auto* mon = station_.monitor()) {
      mon->on_role_change(station_.id(), /*is_reference=*/true,
                          /*via_election=*/true, station_.sim().now());
    }
  } else if (options_.calibrated_boot && !started_before_) {
    state_ = State::kFollower;
    synced_ = true;
    // Boot grace: listen for a couple of BPs before concluding there is no
    // reference, so a just-started reference (or a faster election winner)
    // is not trampled by the whole network contending in interval 1.
    missed_ = -2;
  } else {
    // Churn return: the hardware clock free-ran while away, so rescan.
    state_ = State::kCoarse;
    synced_ = false;
  }
  started_before_ = true;
  schedule_tick();
}

void Sstsp::stop() {
  running_ = false;
  if (tick_event_ != 0) {
    station_.sim().cancel(tick_event_);
    tick_event_ = 0;
  }
  cancel_tx_event();
}

void Sstsp::cancel_tx_event() {
  if (tx_event_ != 0) {
    station_.sim().cancel(tx_event_);
    tx_event_ = 0;
  }
}

void Sstsp::schedule_tick() {
  if (tick_event_ != 0) station_.sim().cancel(tick_event_);
  const double bp = schedule_.interval_us;
  const double c_now = adjusted_now();
  auto next_j = static_cast<std::int64_t>(
      std::floor(c_now / bp - kTickFraction)) + 1;
  // Strictly monotone tick index, or rounding could re-arm the tick for
  // the interval just processed at the same instant forever.
  if (next_j <= last_tick_j_) next_j = last_tick_j_ + 1;
  const double tick_time =
      schedule_.emission_time(next_j) + kTickFraction * bp;
  tick_event_ = station_.sim().at(adjusted_.real_at(tick_time),
                                  [this, next_j] { handle_tick(next_j); });
}

void Sstsp::handle_tick(std::int64_t j) {
  tick_event_ = 0;
  if (!running_) return;
  last_tick_j_ = j;

  switch (state_) {
    case State::kCoarse: {
      ++coarse_bps_seen_;
      if (coarse_bps_seen_ >= cfg_.coarse_scan_bps) finish_coarse();
      break;
    }
    case State::kFollower: {
      if (last_accepted_interval_ < j) {
        ++missed_;
        if (synced_ && missed_ >= cfg_.l && !options_.passive) {
          arm_contention(j + 1, election_cw_);
        }
      } else {
        missed_ = 0;
      }
      break;
    }
    case State::kTentativeRef: {
      if (last_tx_interval_ == j) {
        --confirm_left_;
        if (confirm_left_ <= 0) {
          state_ = State::kReference;
          ++stats_.elections_won;
          station_.trace_event(trace::EventKind::kElectionWon);
          if (auto* mon = station_.monitor()) {
            mon->on_role_change(station_.id(), /*is_reference=*/true,
                                /*via_election=*/true, station_.sim().now());
          }
        }
      }
      if (state_ == State::kReference) {
        schedule_reference_emission(j + 1);
      } else {
        arm_contention(j + 1, cfg_.election_cw_min);
      }
      break;
    }
    case State::kReference: {
      schedule_reference_emission(j + 1);
      break;
    }
  }
  schedule_tick();
}

double Sstsp::effective_guard_us(double hw_now_us) const {
  return core::effective_guard_us(cfg_, hw_now_us, last_sync_hw_us_);
}

void Sstsp::arm_contention(std::int64_t j, int window) {
  if (j < 1 || static_cast<std::size_t>(j) > schedule_.n) return;
  const auto& phy = station_.channel().phy();
  // Slot 0 — the exact interval start — belongs to the reference's
  // no-delay emission.  Contenders draw from [1, w] so that a node whose
  // contention was triggered by an isolated beacon loss defers to (or
  // cancels on) the still-alive reference instead of colliding with it.
  const auto slot = static_cast<std::int64_t>(station_.rng().uniform_int(
      1, static_cast<std::uint64_t>(window)));
  const double tx_time = schedule_.emission_time(j) +
                         static_cast<double>(slot) * phy.slot_time.to_us();
  cancel_tx_event();
  tx_event_ = station_.sim().at(adjusted_.real_at(tx_time),
                                [this, j] { handle_contention_expiry(j); });
  // DCF-style growth for the next unresolved round; reset on any accepted
  // beacon (see on_receive).
  election_cw_ = std::min(window * 2 + 1, cfg_.election_cw_max);
}

void Sstsp::handle_contention_expiry(std::int64_t j) {
  tx_event_ = 0;
  if (!running_ || state_ == State::kCoarse) return;
  if (last_accepted_interval_ >= j) return;  // someone already won interval j
  const sim::SimTime now = station_.sim().now();
  if (!ignore_carrier() && station_.medium_busy(now)) return;  // defer

  transmit_beacon(j);
  if (state_ == State::kFollower) {
    state_ = State::kTentativeRef;
    confirm_left_ = cfg_.confirm_bps;
  }
}

void Sstsp::schedule_reference_emission(std::int64_t j) {
  if (j < 1 || static_cast<std::size_t>(j) > schedule_.n) return;
  const double tx_time = schedule_.emission_time(j) - emission_advance_us();
  cancel_tx_event();
  emission_retries_left_ = options_.busy_retries;
  tx_event_ = station_.sim().at(adjusted_.real_at(tx_time),
                                [this, j] { handle_reference_emission(j); });
}

void Sstsp::handle_reference_emission(std::int64_t j) {
  tx_event_ = 0;
  if (!running_ || state_ != State::kReference) return;
  if (last_accepted_interval_ >= j) return;  // lost the role this interval
  const sim::SimTime now = station_.sim().now();
  if (!ignore_carrier() && station_.medium_busy(now)) {
    if (emission_retries_left_ > 0) {
      --emission_retries_left_;
      tx_event_ = station_.sim().at(
          now + sim::SimTime::from_us_double(options_.busy_retry_step_us),
          [this, j] { handle_reference_emission(j); });
    }
    return;  // retries exhausted (or none configured): RULE R soon
  }
  transmit_beacon(j);
}

void Sstsp::transmit_beacon(std::int64_t j) {
  if (options_.passive) return;
  const sim::SimTime now = station_.sim().now();
  const auto& phy = station_.channel().phy();
  const double c_now = adjusted_now();
  const auto ts =
      static_cast<std::int64_t>(std::floor(c_now + timestamp_skew_us()));
  mac::Frame frame;
  frame.sender = station_.id();
  frame.air_bytes = phy.sstsp_beacon_bytes;
  frame.domain = options_.domain;
  frame.body = signer_.sign(j, ts, station_.id());
  const std::uint64_t tid =
      station_.transmit(std::move(frame), phy.sstsp_beacon_duration);
  ++stats_.beacons_sent;
  station_.trace_event(trace::EventKind::kBeaconTx, mac::kNoNode,
                       static_cast<double>(j), tid);
  if (auto* mon = station_.monitor()) {
    mon->on_beacon_tx(station_.id(), j, static_cast<double>(ts), c_now,
                      state_ == State::kReference, now);
  }
  last_tx_interval_ = j;
  last_tx_start_ = now;
  if (state_ == State::kReference) {
    // A confirmed reference IS the network timeline: its own emissions are
    // the freshness evidence that keeps its guard tight, so a rogue node on
    // a divergent timeline can never talk it into deferring (see the
    // effective_guard_us discussion in sstsp_config.h).
    last_sync_hw_us_ = station_.hw_us_now();
  }
}

void Sstsp::finish_coarse() {
  obs::Span span(station_.profiler(), obs::Phase::kFilterEval);
  const auto estimate = coarse_.estimate();
  if (!estimate) {
    // Nothing heard (or everything rejected): keep scanning another window.
    coarse_bps_seen_ = 0;
    coarse_.reset();
    return;
  }
  const double hw_now = station_.hw_us_now();
  const double before = adjusted_.value_at_hw(hw_now);
  adjusted_.step_to(before + *estimate, hw_now);
  if (auto* mon = station_.monitor()) {
    mon->on_clock_adjustment(station_.id(), station_.sim().now(), before,
                             adjusted_.value_at_hw(hw_now), adjusted_.k(),
                             /*coarse=*/true);
  }
  last_sync_hw_us_ = hw_now;
  ++stats_.coarse_steps;
  station_.trace_event(trace::EventKind::kCoarseStep, mac::kNoNode,
                       *estimate);
  state_ = State::kFollower;
  missed_ = 0;
  last_accepted_interval_ = current_interval();
  // Not yet eligible for contention or metrics: the paper's joining rule.
  synced_ = false;
  resync_adjustments_ = 0;
}

bool Sstsp::is_blacklisted(mac::NodeId sender) const {
  const auto it = tracks_.find(sender);
  return it != tracks_.end() &&
         it->second.blacklisted_until_hw_us > station_.hw_us_now();
}

void Sstsp::note_rejection(mac::NodeId sender, double hw_now_us) {
  if (cfg_.blacklist_threshold <= 0) return;
  // The guard/interval checks run before any track exists for a
  // first-contact sender; materialize one so repeat offenders are counted
  // from their first frame.  Unknown identities return nullptr and are
  // dropped before reaching here anyway.
  SenderTrack* track_ptr = track_for(sender);
  if (track_ptr == nullptr) return;
  SenderTrack& track = *track_ptr;
  if (++track.consecutive_rejections >= cfg_.blacklist_threshold) {
    track.consecutive_rejections = 0;
    track.blacklisted_until_hw_us =
        hw_now_us + cfg_.blacklist_penalty_s * 1e6;
    station_.trace_event(trace::EventKind::kTakeover, sender,
                         cfg_.blacklist_penalty_s * 1e6);
  }
}

Sstsp::SenderTrack* Sstsp::track_for(mac::NodeId sender) {
  auto it = tracks_.find(sender);
  if (it != tracks_.end()) return &it->second;
  const auto anchor = directory_.anchor_of(sender);
  if (!anchor) return nullptr;  // unknown identity: external attacker
  if (tracks_.size() >= 8) {
    // Bounded memory: evict an arbitrary non-current entry.
    for (auto evict = tracks_.begin(); evict != tracks_.end(); ++evict) {
      if (evict->first != current_ref_) {
        tracks_.erase(evict);
        break;
      }
    }
  }
  auto [ins, _] = tracks_.emplace(
      sender, SenderTrack(*anchor, schedule_, &directory_.verify_cache(),
                          make_discipline(cfg_)));
  return &ins->second;
}

void Sstsp::on_receive(const mac::Frame& frame, const mac::RxInfo& rx) {
  if (!frame.is_sstsp()) return;
  if (frame.domain != options_.domain) return;  // foreign broadcast domain
  if (is_blacklisted(frame.sender)) return;  // recovery: drop unprocessed
  ++stats_.beacons_received;
  const auto& body = frame.sstsp();
  const double c_now = adjusted_.read_us(rx.delivered);
  const double ts_est =
      static_cast<double>(body.timestamp_us) + rx.nominal_delay_us;
  // Lifecycle rx span: delivered and about to enter the §3.3 checks.
  station_.trace_event(trace::EventKind::kBeaconRx, frame.sender,
                       ts_est - c_now, frame.trace_id);

  if (state_ == State::kCoarse) {
    // Pre-synchronization: just collect the offset; outliers are filtered
    // when the scan window closes.
    coarse_.add_offset(ts_est - c_now);
    return;
  }

  const std::int64_t j = body.interval;
  // Check 1 (paper §3.3): the claimed interval must be the current one,
  // otherwise the key may already be disclosed (replay / delay attack).
  if (!schedule_.interval_check(j, c_now, cfg_.interval_slack_us)) {
    ++stats_.rejected_interval;
    station_.trace_event(trace::EventKind::kRejectInterval, frame.sender,
                         ts_est - c_now, frame.trace_id);
    // NOT counted toward the blacklist: a stale interval is replay
    // evidence against some third party, never attributable to the
    // claimed sender.
    return;
  }
  // Check 4: guard time.  Applied at arrival, before the frame is buffered,
  // so an internal attacker cannot move us beyond delta per beacon.
  const double arrival_hw = station_.hw().read_us(rx.delivered);
  if (std::fabs(ts_est - c_now) > effective_guard_us(arrival_hw)) {
    ++stats_.rejected_guard;
    station_.trace_event(trace::EventKind::kRejectGuard, frame.sender,
                         ts_est - c_now, frame.trace_id);
    // Two follow-ups need proof of chain ownership via a *fresh* key
    // disclosure (a pulse-delayed replay of an honest beacon carries an
    // already-public key and must not frame its victim, nor demote anyone):
    //   * blacklist attribution (recovery extension), and
    //   * RULE R across divergent timelines.  After a partition heals (or
    //     after a local clock fault spawns a rogue second reference), the
    //     two references sit outside each other's guard window, so without
    //     this the role conflict can never resolve: each side keeps its own
    //     guard tight by syncing to itself and rejects the other forever.
    //     The later transmitter of the shared interval yields, exactly as
    //     in-guard RULE R; its orphaned followers then re-admit the
    //     surviving timeline through guard silence growth.  Abuse of this
    //     path is a live chain member spending its own key material on
    //     out-of-guard frames — attributable, and rate-limited by the
    //     blacklist when enabled.
    const bool role_conflict =
        (state_ == State::kTentativeRef || state_ == State::kReference) &&
        !never_demote();
    if ((cfg_.blacklist_threshold > 0 || role_conflict) && j > 1) {
      SenderTrack* track = track_for(frame.sender);
      obs::Span span(station_.profiler(), obs::Phase::kCryptoVerify);
      if (track != nullptr &&
          track->pipeline.verify_key_fresh(j - 1, body.disclosed_key)) {
        if (cfg_.blacklist_threshold > 0) {
          note_rejection(frame.sender, arrival_hw);
        }
        if (role_conflict) {
          const bool mine_was_earlier =
              last_tx_interval_ == j && last_tx_start_ < rx.tx_start;
          if (!mine_was_earlier) {
            force_follower_role();
            ++stats_.demotions;
            station_.trace_event(trace::EventKind::kDemotion, frame.sender);
          }
        }
      }
    }
    return;
  }

  SenderTrack* track = track_for(frame.sender);
  if (track == nullptr) {
    ++stats_.rejected_key;  // no published anchor: external identity
    station_.trace_event(trace::EventKind::kRejectKey, frame.sender, 0.0,
                         frame.trace_id);
    return;
  }
  PipelineResult res;
  {
    obs::Span span(station_.profiler(), obs::Phase::kCryptoVerify);
    res = track->pipeline.ingest(body, frame.sender, arrival_hw, ts_est,
                                 frame.trace_id);
  }
  if (!res.key_valid) {
    ++stats_.rejected_key;
    station_.trace_event(trace::EventKind::kRejectKey, frame.sender, 0.0,
                         frame.trace_id);
    return;
  }
  if (j > 1) {
    // A disclosed chain element (K_{j-1}) was just accepted as authentic.
    if (auto* mon = station_.monitor()) {
      mon->on_key_accepted(station_.id(), frame.sender, j - 1, c_now,
                           station_.sim().now());
    }
  }
  if (res.mac_failed) {
    ++stats_.rejected_mac;
    station_.trace_event(trace::EventKind::kRejectMac, frame.sender, 0.0,
                         frame.trace_id);
    note_rejection(frame.sender, arrival_hw);
  }

  // The beacon counts as "heard" for liveness/election purposes.
  track->consecutive_rejections = 0;
  last_accepted_interval_ = std::max(last_accepted_interval_, j);
  missed_ = 0;
  election_cw_ = cfg_.election_cw_min;

  // RULE R: yield the (tentative) reference role to an earlier transmitter.
  if ((state_ == State::kTentativeRef || state_ == State::kReference) &&
      !never_demote()) {
    const bool mine_was_earlier =
        last_tx_interval_ == j && last_tx_start_ < rx.tx_start;
    if (!mine_was_earlier) {
      force_follower_role();
      ++stats_.demotions;
      station_.trace_event(trace::EventKind::kDemotion, frame.sender);
    }
  }

  current_ref_ = frame.sender;

  if (res.authenticated) {
    // The *previous* interval's stored beacon just authenticated — the
    // auth-ok span belongs to that transmission's lifecycle, not to the
    // frame that delivered the disclosing key.
    station_.trace_event(trace::EventKind::kAuthOk, frame.sender,
                         static_cast<double>(res.authenticated->interval),
                         res.authenticated->trace_id);
    // The discipline owns the sample history: retention capacity and the
    // previous-clock-epoch age-out both derive from its declared window
    // (the paper discipline declares solver_span_bps, preserving the
    // span+1 / span+4-BP arithmetic bit-for-bit).  A screened-out sample
    // (RLS innovation gating) is booked but never blocks the §3.3 flow.
    if (const auto screened = track->discipline->add_sample(
            RefSample{res.authenticated->arrival_hw_us,
                      res.authenticated->ts_est_us},
            schedule_.interval_us)) {
      note_verdict(*screened);
    }
    try_adjust(*track, j, res.authenticated->trace_id);
  }
}

void Sstsp::try_adjust(SenderTrack& track, std::int64_t cur_interval,
                       std::uint64_t trace_id) {
  if (state_ != State::kFollower ||
      track.discipline->size() < track.discipline->min_samples()) {
    return;
  }
  const double target =
      schedule_.emission_time(cur_interval + cfg_.m);
  const ClockParams previous{adjusted_.k(), adjusted_.b()};
  obs::Span span(station_.profiler(), obs::Phase::kFilterEval);
  const double hw_now = station_.hw_us_now();
  const DisciplineResult outcome =
      track.discipline->propose(previous, hw_now, target);
  note_verdict(outcome.verdict);
  if (!outcome.params) {
    // The legacy aggregate counts *proposal* rejections exactly as the
    // pre-API protocol did; "not enough evidence yet" is not one.
    if (verdict_is_rejection(outcome.verdict)) ++stats_.solver_rejections;
    return;
  }
  const double before = adjusted_.value_at_hw(hw_now);
  adjusted_.set_params(outcome.params->k, outcome.params->b);
  if (auto* mon = station_.monitor()) {
    mon->on_clock_adjustment(station_.id(), station_.sim().now(), before,
                             adjusted_.value_at_hw(hw_now),
                             outcome.params->k, /*coarse=*/false);
  }
  ++stats_.adjustments;
  station_.trace_event(trace::EventKind::kAdjustment, current_ref_,
                       (outcome.params->k - 1.0) * 1e6, trace_id);
  last_sync_hw_us_ = station_.hw_us_now();
  if (!synced_) {
    // A rejoining node counts as synchronized (and re-enters the error
    // metric and contention eligibility) only once Lemma-1 convergence has
    // had a few beacons to act on the coarse step's residual offset.
    if (++resync_adjustments_ >= 3) synced_ = true;
  }
}

void Sstsp::note_verdict(DisciplineVerdict verdict) {
  // ProtocolStats sits below core and sizes the array by hand.
  static_assert(kDisciplineVerdictCount <=
                std::tuple_size_v<decltype(stats_.discipline_verdicts)>);
  ++stats_.discipline_verdicts[static_cast<std::size_t>(verdict)];
  if (auto* ins = station_.instruments()) {
    ins->on_discipline_verdict(static_cast<std::size_t>(verdict));
  }
}

void Sstsp::force_reference_role() {
  state_ = State::kReference;
  confirm_left_ = 0;
  // A forced acquisition bypasses the §3.3 contention election — the
  // monitor flags it as a takeover (only attacker/test hooks reach this).
  if (auto* mon = station_.monitor()) {
    mon->on_role_change(station_.id(), /*is_reference=*/true,
                        /*via_election=*/false, station_.sim().now());
  }
  schedule_reference_emission(current_interval() + 1);
}

void Sstsp::force_follower_role() {
  state_ = State::kFollower;
  confirm_left_ = 0;
  if (auto* mon = station_.monitor()) {
    mon->on_role_change(station_.id(), /*is_reference=*/false,
                        /*via_election=*/true, station_.sim().now());
  }
  cancel_tx_event();
}

void Sstsp::restart_coarse() {
  // The paper's "restart the synchronization procedure" recovery: drop all
  // fine-grained state and rescan as if (re)joining.
  state_ = State::kCoarse;
  synced_ = false;
  resync_adjustments_ = 0;
  coarse_.reset();
  coarse_bps_seen_ = 0;
  missed_ = 0;
  confirm_left_ = 0;
  tracks_.clear();
  current_ref_ = mac::kNoNode;
  cancel_tx_event();
}

}  // namespace sstsp::core
