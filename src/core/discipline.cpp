#include "core/discipline.h"

#include <algorithm>
#include <cmath>

namespace sstsp::core {

namespace {

std::string at_line(const obs::json::Value& v) {
  return v.line > 0 ? "line " + std::to_string(v.line) + ": " : "";
}

// ---------------------------------------------------------------------------
// "paper" — the §3.3 span solver (the bit-identical default).

class PaperSpanDiscipline final : public ClockDiscipline {
 public:
  explicit PaperSpanDiscipline(const SstspConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string_view name() const override { return "paper"; }
  [[nodiscard]] int history_window_bps() const override {
    return std::max(1, cfg_.solver_span_bps);
  }

  [[nodiscard]] DisciplineResult propose(const ClockParams& previous,
                                         double t_now_us,
                                         double target_us) override {
    return solve_adjustment(previous, t_now_us, samples_.back(),
                            samples_.front(), target_us, cfg_);
  }

 private:
  const SstspConfig& cfg_;
};

// ---------------------------------------------------------------------------
// "rls" — recursive least squares with forgetting + innovation gating
// (arXiv:1810.05837's Newton adaptive tracker, specialized to the clock
// model).
//
// Model, anchored at the newest sample (rolling anchor):
//
//   y(u) = c + rho*u + alpha*u^2/2
//
//   y  = (ts - ts0) - (t - t0)   residual vs the nominal 1:1 rate, us
//   u  = (t - t0) * 1e-6         local time since the anchor, s
//   c  = offset (us), rho = relative drift (us/s),
//   alpha = drift rate (us/s^2) — the term that keeps the fit from lagging
//   a temperature ramp (an affine fit trails quadratic truth by ~alpha*tau^2
//   where tau is the forgetting memory).
//
// The anchor shifts to every new sample: the state is propagated through the
// polynomial transition T = [[1,du,du^2/2],[0,1,du],[0,0,1]] and the
// covariance through T P T', then a scalar measurement update (regressor
// [1,0,0]) absorbs the new residual.  Anchoring at a fixed first sample
// instead looks simpler but winds up the covariance: once the sample clock
// u dwarfs the forgetting memory, the regressors [1, u, u^2/2] are locally
// collinear, the coefficients wander to huge mutually-cancelling values and
// extrapolation explodes.  The rolling form keeps u within one beacon
// period of zero, so conditioning is independent of run length.
//
// The expected local instant of the convergence target solves
// ts_hat(t*) = target by Newton iteration on u (near-linear, so 2-3 steps
// converge to machine precision).  The (k, b) mapping from (t*, target) is
// the same continuity construction as the paper solver — only the rate
// estimate underneath differs.

class RlsDiscipline final : public ClockDiscipline {
 public:
  explicit RlsDiscipline(const SstspConfig& cfg) : cfg_(cfg) { prime(); }

  [[nodiscard]] std::string_view name() const override { return "rls"; }
  [[nodiscard]] int history_window_bps() const override {
    return std::max(2, cfg_.discipline.window_bps);
  }

  [[nodiscard]] DisciplineResult propose(const ClockParams& previous,
                                         double t_now_us,
                                         double target_us) override {
    DisciplineResult out;
    if (count_ < 2) {
      out.verdict = DisciplineVerdict::kInsufficientHistory;
      return out;
    }
    // Newton: g(u) = 1e6*u + c + rho*u + alpha*u^2/2 - (target - ts0) = 0.
    const double want = target_us - ts0_;
    double u = (t_now_us - t0_) * 1e-6;
    bool bad_slope = false;
    for (int it = 0; it < 3; ++it) {
      const double g = 1e6 * u + th_c_ + th_rho_ * u + 0.5 * th_alpha_ * u * u;
      const double gp = 1e6 + th_rho_ + th_alpha_ * u;  // d(ts)/d(u)
      if (gp <= 0.0) {
        bad_slope = true;
        break;
      }
      u -= (g - want) / gp;
    }
    if (bad_slope) {
      out.verdict = DisciplineVerdict::kNonIncreasingSamples;
      return out;
    }
    const double t_star = t0_ + u * 1e6;
    out.expected_t_star_us = t_star;
    if (t_star <= t_now_us) {
      out.verdict = DisciplineVerdict::kTargetNotAhead;
      return out;
    }
    const double c_now = previous.eval(t_now_us);
    const double k = (target_us - c_now) / (t_star - t_now_us);
    if (k < cfg_.k_min || k > cfg_.k_max) {
      out.verdict = DisciplineVerdict::kSlopeOutOfRange;
      return out;
    }
    out.params = ClockParams{k, c_now - k * t_now_us};
    return out;
  }

 protected:
  std::optional<DisciplineVerdict> on_sample(const RefSample& s) override {
    if (rebuilt_) {  // on_epoch_break already ingested this sample
      rebuilt_ = false;
      return std::nullopt;
    }
    return ingest(s);
  }

  void on_epoch_break() override {
    // History now starts a new clock epoch: refit from the survivors only.
    prime();
    for (const auto& s : samples_) (void)ingest(s);
    rebuilt_ = true;
  }

  void on_reset() override { prime(); }

 private:
  /// Samples the estimator must absorb before the innovation gate arms
  /// (early residuals legitimately carry the whole initial offset).
  static constexpr int kGateMinSamples = 4;

  void prime() {
    count_ = 0;
    th_c_ = th_rho_ = th_alpha_ = 0.0;
    // Diagonal prior: offset sigma ~1e4 us (the coarse guard), drift sigma
    // ~1e3 us/s (5x the 802.11 relative-rate bound), drift-rate sigma
    // ~1e2 us/s^2 (far above any credible thermal ramp).
    p_[0][0] = 1e8;
    p_[1][1] = 1e6;
    p_[2][2] = 1e4;
    p_[0][1] = p_[0][2] = p_[1][2] = 0.0;
    p_[1][0] = p_[2][0] = p_[2][1] = 0.0;
  }

  std::optional<DisciplineVerdict> ingest(const RefSample& s) {
    if (count_ == 0) {
      t0_ = s.t_local_us;
      ts0_ = s.ts_ref_us;
    } else {
      // Shift the expansion point to this sample's (trusted) local time.
      const double dt = s.t_local_us - t0_;
      const double du = dt * 1e-6;
      const double half = 0.5 * du * du;
      th_c_ += th_rho_ * du + th_alpha_ * half;
      th_rho_ += th_alpha_ * du;
      double tp[3][3];  // T * P
      for (int j = 0; j < 3; ++j) {
        tp[0][j] = p_[0][j] + du * p_[1][j] + half * p_[2][j];
        tp[1][j] = p_[1][j] + du * p_[2][j];
        tp[2][j] = p_[2][j];
      }
      for (int i = 0; i < 3; ++i) {  // (T*P) * T'
        p_[i][0] = tp[i][0] + du * tp[i][1] + half * tp[i][2];
        p_[i][1] = tp[i][1] + du * tp[i][2];
        p_[i][2] = tp[i][2];
      }
      ts0_ += dt;
      t0_ = s.t_local_us;
    }
    const double e = (s.ts_ref_us - ts0_) - th_c_;  // innovation at u = 0
    const double gate = cfg_.discipline.innovation_gate_us;
    if (count_ >= kGateMinSamples && gate > 0.0 && std::fabs(e) > gate) {
      return DisciplineVerdict::kInnovationRejected;
    }
    const double lambda = std::clamp(cfg_.discipline.forgetting, 1e-3, 1.0);
    const double denom = lambda + p_[0][0];
    const double gain[3] = {p_[0][0] / denom, p_[1][0] / denom,
                            p_[2][0] / denom};
    th_c_ += gain[0] * e;
    th_rho_ += gain[1] * e;
    th_alpha_ += gain[2] * e;
    for (int i = 0; i < 3; ++i) {
      const double phi_p = p_[0][i];  // (phi' P)[i] before the update
      for (int j = 0; j < 3; ++j) {
        p_[j][i] = (p_[j][i] - gain[j] * phi_p) / lambda;
      }
    }
    ++count_;
    return std::nullopt;
  }

  const SstspConfig& cfg_;
  int count_{0};
  bool rebuilt_{false};
  double t0_{0.0}, ts0_{0.0};
  // offset (us), relative drift (us/s), drift rate (us/s^2)
  double th_c_{0.0}, th_rho_{0.0}, th_alpha_{0.0};
  double p_[3][3]{};
};

// ---------------------------------------------------------------------------
// "holdover" — the paper solver plus drift-rate memory.  When a beacon
// drought ages the history out (one fresh sample left), it re-anchors on
// that sample and coasts on the last fitted hw-per-reference rate instead
// of waiting a further beacon period for a second point.

class HoldoverDiscipline final : public ClockDiscipline {
 public:
  explicit HoldoverDiscipline(const SstspConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] std::string_view name() const override { return "holdover"; }
  [[nodiscard]] int history_window_bps() const override {
    return std::max(1, cfg_.solver_span_bps);
  }
  [[nodiscard]] std::size_t min_samples() const override { return 1; }

  [[nodiscard]] DisciplineResult propose(const ClockParams& previous,
                                         double t_now_us,
                                         double target_us) override {
    if (samples_.size() >= 2) {
      DisciplineResult out =
          solve_adjustment(previous, t_now_us, samples_.back(),
                           samples_.front(), target_us, cfg_);
      if (out.params) {
        const RefSample& a = samples_.back();
        const RefSample& b = samples_.front();
        rate_ = (a.t_local_us - b.t_local_us) / (a.ts_ref_us - b.ts_ref_us);
        rate_anchor_t_us_ = a.t_local_us;
        has_rate_ = true;
      }
      return out;
    }

    DisciplineResult out;
    const RefSample& s = samples_.back();
    const double max_age_us =
        static_cast<double>(std::max(1, cfg_.discipline.holdover_max_age_bps)) *
        last_bp_us_;
    if (!has_rate_ || last_bp_us_ <= 0.0 ||
        s.t_local_us - rate_anchor_t_us_ > max_age_us) {
      out.verdict = DisciplineVerdict::kInsufficientHistory;
      return out;
    }
    const double t_star = s.t_local_us + rate_ * (target_us - s.ts_ref_us);
    out.expected_t_star_us = t_star;
    if (t_star <= t_now_us) {
      out.verdict = DisciplineVerdict::kTargetNotAhead;
      return out;
    }
    const double c_now = previous.eval(t_now_us);
    const double k = (target_us - c_now) / (t_star - t_now_us);
    if (k < cfg_.k_min || k > cfg_.k_max) {
      out.verdict = DisciplineVerdict::kSlopeOutOfRange;
      return out;
    }
    out.params = ClockParams{k, c_now - k * t_now_us};
    out.verdict = DisciplineVerdict::kHoldoverCoast;
    return out;
  }

 protected:
  std::optional<DisciplineVerdict> on_sample(const RefSample&) override {
    // Rate memory survives epoch breaks on purpose — a drought is exactly
    // when the remembered rate earns its keep.
    return std::nullopt;
  }

 private:
  const SstspConfig& cfg_;
  bool has_rate_{false};
  double rate_{1.0};  // hw us per reference us, from the last good solve
  double rate_anchor_t_us_{0.0};
};

}  // namespace

// ---------------------------------------------------------------------------
// Base-class history management.

std::optional<DisciplineVerdict> ClockDiscipline::add_sample(
    const RefSample& sample, double bp_us) {
  last_bp_us_ = bp_us;
  samples_.push_back(sample);
  const int window = std::max(1, history_window_bps());
  const auto cap = static_cast<std::size_t>(window) + 1;
  while (samples_.size() > cap) samples_.pop_front();
  const double max_age_us =
      (static_cast<double>(window) + kEpochGapSlackBps) * bp_us;
  bool epoch_break = false;
  while (samples_.size() > 1 &&
         samples_.back().t_local_us - samples_.front().t_local_us >
             max_age_us) {
    samples_.pop_front();
    epoch_break = true;
  }
  if (epoch_break) on_epoch_break();
  return on_sample(sample);
}

void ClockDiscipline::reset() {
  samples_.clear();
  on_reset();
}

// ---------------------------------------------------------------------------
// Factory + config plumbing.

std::unique_ptr<ClockDiscipline> make_discipline(const SstspConfig& cfg) {
  const std::string_view name = cfg.discipline.effective_name();
  if (name == "rls") return std::make_unique<RlsDiscipline>(cfg);
  if (name == "holdover") return std::make_unique<HoldoverDiscipline>(cfg);
  return std::make_unique<PaperSpanDiscipline>(cfg);
}

bool discipline_known(std::string_view name) {
  const auto& names = discipline_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

const std::vector<std::string_view>& discipline_names() {
  static const std::vector<std::string_view> names{"paper", "rls",
                                                   "holdover"};
  return names;
}

const std::vector<std::string>& discipline_verdict_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    v.reserve(kDisciplineVerdictCount);
    for (std::size_t i = 0; i < kDisciplineVerdictCount; ++i) {
      v.emplace_back(to_string(static_cast<DisciplineVerdict>(i)));
    }
    return v;
  }();
  return names;
}

bool discipline_param_key_known(std::string_view key) {
  return key == "name" || key == "span" || key == "k-min" ||
         key == "k-max" || key == "window" || key == "forgetting" ||
         key == "innovation-gate" || key == "holdover-max-age";
}

bool apply_discipline_json(const obs::json::Value& value, SstspConfig* cfg,
                           std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  if (value.kind == obs::json::Value::Kind::kString) {
    if (!discipline_known(value.string)) {
      return fail(at_line(value) + "unknown discipline '" + value.string +
                  "' (have: paper, rls, holdover)");
    }
    cfg->discipline.name = value.string;
    return true;
  }
  if (!value.is_object()) {
    return fail(at_line(value) +
                "config key 'discipline' must be a name string or an object");
  }
  for (const auto& [key, v] : value.object) {
    if (!discipline_param_key_known(key)) {
      return fail(at_line(v) + "unknown config key 'discipline." + key + "'");
    }
    auto need_number = [&](double lo, double hi) -> bool {
      return v.kind == obs::json::Value::Kind::kNumber && v.number >= lo &&
             v.number <= hi;
    };
    if (key == "name") {
      if (v.kind != obs::json::Value::Kind::kString ||
          !discipline_known(v.string)) {
        return fail(at_line(v) + "config key 'discipline.name' must be one "
                                 "of: paper, rls, holdover");
      }
      cfg->discipline.name = v.string;
    } else if (key == "span") {
      if (!need_number(1, 1e6)) {
        return fail(at_line(v) +
                    "config key 'discipline.span' must be a number >= 1");
      }
      cfg->solver_span_bps = static_cast<int>(v.number);
    } else if (key == "k-min") {
      if (!need_number(0.0, 10.0)) {
        return fail(at_line(v) +
                    "config key 'discipline.k-min' must be in [0, 10]");
      }
      cfg->k_min = v.number;
    } else if (key == "k-max") {
      if (!need_number(0.0, 10.0)) {
        return fail(at_line(v) +
                    "config key 'discipline.k-max' must be in [0, 10]");
      }
      cfg->k_max = v.number;
    } else if (key == "window") {
      if (!need_number(2, 1e6)) {
        return fail(at_line(v) +
                    "config key 'discipline.window' must be a number >= 2");
      }
      cfg->discipline.window_bps = static_cast<int>(v.number);
    } else if (key == "forgetting") {
      if (!need_number(1e-3, 1.0)) {
        return fail(at_line(v) + "config key 'discipline.forgetting' must "
                                 "be in (0, 1]");
      }
      cfg->discipline.forgetting = v.number;
    } else if (key == "innovation-gate") {
      if (!need_number(0.0, 1e9)) {
        return fail(at_line(v) + "config key 'discipline.innovation-gate' "
                                 "must be a number >= 0 (us; 0 disables)");
      }
      cfg->discipline.innovation_gate_us = v.number;
    } else if (key == "holdover-max-age") {
      if (!need_number(1, 1e6)) {
        return fail(at_line(v) + "config key 'discipline.holdover-max-age' "
                                 "must be a number >= 1 (beacon periods)");
      }
      cfg->discipline.holdover_max_age_bps = static_cast<int>(v.number);
    }
  }
  if (cfg->k_min > cfg->k_max) {
    return fail(at_line(value) +
                "discipline: k-min must not exceed k-max");
  }
  return true;
}

}  // namespace sstsp::core
