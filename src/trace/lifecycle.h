// Causal beacon-lifecycle tracking.
//
// Consumes the trace-ID-stamped event stream (Station::trace_event fans
// every event here when a tracker is attached) and reassembles each
// transmitted beacon's span tree:
//
//   beacon-tx #id ──┬─ beacon-rx #id      (per receiver)
//                   ├─ auth-ok #id        (deferred µTESLA MAC passed)
//                   ├─ adjustment #id     (the beacon became a (k, b) solve)
//                   └─ reject-* #id       (dropped by a §3.3 check)
//
// Per-stage latencies (tx -> rx, tx -> auth, tx -> adjust) feed the shared
// metrics registry as histograms, and outcome counters expose the funnel
// (how many transmitted beacons were delivered / authenticated / used).
// Note the deferred-authentication shape: µTESLA authenticates the beacon
// of interval j only when interval j+1's key discloses, so tx->auth and
// tx->adjust run about one beacon period — the histograms make that
// protocol property directly measurable.
//
// Memory is bounded: the tracker keeps the newest `capacity` in-flight
// transmissions (FIFO eviction); events for evicted or pre-attachment
// IDs only bump the outcome counters.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "obs/metrics.h"
#include "trace/event_trace.h"

namespace sstsp::trace {

class BeaconLifecycle {
 public:
  explicit BeaconLifecycle(obs::Registry& registry,
                           std::size_t capacity = 4096);

  BeaconLifecycle(const BeaconLifecycle&) = delete;
  BeaconLifecycle& operator=(const BeaconLifecycle&) = delete;

  /// Every traced protocol event (fans out from Station::trace_event).
  void on_event(const TraceEvent& event);

  [[nodiscard]] std::uint64_t tracked() const { return tracked_; }

 private:
  struct TxSpan {
    sim::SimTime tx_time;
    mac::NodeId sender{mac::kNoNode};
  };

  void note_tx(const TraceEvent& event);
  [[nodiscard]] const TxSpan* find(std::uint64_t trace_id) const;

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, TxSpan> spans_;
  std::deque<std::uint64_t> order_;  // FIFO eviction
  std::uint64_t tracked_{0};

  // Pre-resolved handles (obs::Instruments discipline).
  obs::Counter* traced_;
  obs::Counter* rx_;
  obs::Counter* auth_ok_;
  obs::Counter* adjust_;
  obs::Counter* rejected_;
  obs::Histogram* tx_to_rx_us_;
  obs::Histogram* tx_to_auth_us_;
  obs::Histogram* tx_to_adjust_us_;
};

}  // namespace sstsp::trace
