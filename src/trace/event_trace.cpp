#include "trace/event_trace.h"

#include <iomanip>
#include <ostream>

namespace sstsp::trace {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kBeaconTx:
      return "beacon-tx";
    case EventKind::kBeaconRx:
      return "beacon-rx";
    case EventKind::kAdoption:
      return "adoption";
    case EventKind::kAdjustment:
      return "adjustment";
    case EventKind::kCoarseStep:
      return "coarse-step";
    case EventKind::kElectionWon:
      return "election-won";
    case EventKind::kDemotion:
      return "demotion";
    case EventKind::kTakeover:
      return "takeover";
    case EventKind::kRejectGuard:
      return "reject-guard";
    case EventKind::kRejectInterval:
      return "reject-interval";
    case EventKind::kRejectKey:
      return "reject-key";
    case EventKind::kRejectMac:
      return "reject-mac";
    case EventKind::kAuthOk:
      return "auth-ok";
    case EventKind::kEventKindCount:
      break;
  }
  return "?";
}

std::optional<EventKind> kind_from_string(std::string_view name) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::vector<TraceEvent> EventTrace::select(
    const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> EventTrace::by_kind(EventKind kind) const {
  return select([kind](const TraceEvent& e) { return e.kind == kind; });
}

std::vector<TraceEvent> EventTrace::by_node(mac::NodeId node) const {
  return select([node](const TraceEvent& e) {
    return e.node == node || e.peer == node;
  });
}

void EventTrace::dump(std::ostream& os, std::size_t limit,
                      std::optional<EventKind> kind) const {
  std::vector<const TraceEvent*> rows;
  rows.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    if (!kind || e.kind == *kind) rows.push_back(&e);
  }
  const std::size_t start = rows.size() > limit ? rows.size() - limit : 0;
  for (std::size_t i = start; i < rows.size(); ++i) {
    const TraceEvent& e = *rows[i];
    os << std::fixed << std::setprecision(6) << std::setw(12)
       << e.time.to_sec() << "s  node " << std::setw(4) << e.node << "  "
       << std::setw(16) << to_string(e.kind);
    if (e.peer != mac::kNoNode) os << "  peer " << e.peer;
    if (e.value_us != 0.0) {
      os << "  (" << std::setprecision(2) << e.value_us << " us)";
    }
    if (e.trace_id != 0) os << "  #" << e.trace_id;
    os << '\n';
  }
}

void EventTrace::clear() {
  events_.clear();
  total_recorded_ = 0;
  dropped_ = 0;
  counts_.fill(0);
}

}  // namespace sstsp::trace
