// Structured protocol event tracing.
//
// A bounded ring buffer of timestamped protocol events (transmissions,
// adjustments, security rejections, role changes) that stations record
// into when a sink is attached.  Used by the forensics tooling and tests;
// zero overhead when no sink is attached (a null check per event).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "mac/phy_params.h"
#include "sim/time_types.h"

namespace sstsp::trace {

enum class EventKind : std::uint8_t {
  kBeaconTx,
  kBeaconRx,
  kAdoption,        // TSF family: timestamp adopted
  kAdjustment,      // SSTSP: (k, b) re-solved
  kCoarseStep,
  kElectionWon,
  kDemotion,
  kTakeover,        // multi-hop / attacker role seizure
  kRejectGuard,
  kRejectInterval,
  kRejectKey,
  kRejectMac,
  kAuthOk,          // SSTSP: stored beacon passed its deferred MAC check
  kEventKindCount,  // sentinel: keep last, never record it
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kEventKindCount);

[[nodiscard]] std::string_view to_string(EventKind kind);

/// Inverse of to_string ("beacon-tx" -> kBeaconTx); nullopt for unknown
/// names.  Used by the CLI's --trace-kind filter.
[[nodiscard]] std::optional<EventKind> kind_from_string(std::string_view name);

struct TraceEvent {
  sim::SimTime time;
  mac::NodeId node{mac::kNoNode};  ///< the node recording the event
  EventKind kind{EventKind::kBeaconTx};
  mac::NodeId peer{mac::kNoNode};  ///< sender/subject, where applicable
  double value_us{0.0};            ///< kind-specific payload (offset, ...)
  /// Causal beacon-lifecycle ID: the channel-assigned transmission ID of
  /// the beacon this event belongs to (0 = not tied to a beacon).  Shared
  /// across tx -> per-receiver rx -> auth outcome -> adjustment, so the
  /// events of one beacon form a span tree keyed by this value.
  std::uint64_t trace_id{0};
};

class EventTrace {
 public:
  /// Streaming observer: sees every recorded event at record time, before
  /// any ring-buffer eviction — so a JSONL sink exports the *complete*
  /// event stream even when the ring only retains the newest slice.
  using Sink = std::function<void(const TraceEvent&)>;

  explicit EventTrace(std::size_t capacity = 65536) : capacity_(capacity) {}

  void record(TraceEvent event) {
    ++total_recorded_;
    ++counts_[static_cast<std::size_t>(event.kind)];
    if (sink_) sink_(event);
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(event);
  }

  /// Attaches (or, with an empty function, detaches) the streaming sink.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total_recorded() const {
    return total_recorded_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Count of events of a kind over the whole run (drops included).
  [[nodiscard]] std::uint64_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  /// Retained events matching the predicate, oldest first.
  [[nodiscard]] std::vector<TraceEvent> select(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Retained events of one kind / involving one node.
  [[nodiscard]] std::vector<TraceEvent> by_kind(EventKind kind) const;
  [[nodiscard]] std::vector<TraceEvent> by_node(mac::NodeId node) const;

  /// Human-readable dump of the newest `limit` retained events, optionally
  /// restricted to one kind.
  void dump(std::ostream& os, std::size_t limit = 50,
            std::optional<EventKind> kind = std::nullopt) const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  Sink sink_;
  std::uint64_t total_recorded_{0};
  std::uint64_t dropped_{0};
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

}  // namespace sstsp::trace
