// Cross-node trace analyzer: the library behind sstsp_tracetool.
//
// Consumes the JSONL streams the runners emit — protocol event streams
// (--json-out), telemetry time-series (--telemetry-out), flight-recorder
// dumps and run summaries — possibly split across one file per node, and
// produces:
//
//   * a single time-ordered merged stream (post-mortem reading order);
//   * a beacon funnel report: tx -> rx -> auth-ok -> adjustment, stitched
//     across nodes by the trace_id the codec carries end-to-end (§4's
//     verify pipeline as a funnel, including cross-node tx->adjust
//     latency);
//   * convergence timelines: cluster max-offset-over-time plus per-node
//     error curves (from per_node telemetry), first-sync instant, error
//     spikes above the sync threshold and when each re-converged — the
//     transient-re-convergence evaluation of the paper's §5;
//   * per-fault recovery curves: the error timeline sliced around each
//     fault mark (from run summaries, or supplied programmatically by
//     bench/abl_fault_matrix).
//
// Robustness rule: a line that does not parse (torn tail of a crashed
// writer, truncated copy) is counted and skipped, never fatal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "trace/event_trace.h"

namespace sstsp::trace {

struct AnalyzerOptions {
  /// The paper's industry sync threshold (run::kSyncThresholdUs).
  double sync_threshold_us = 25.0;
};

struct LoadStats {
  std::size_t files{0};
  std::size_t lines{0};
  std::size_t torn{0};  ///< unparsable / truncated lines, skipped
  std::size_t events{0};
  std::size_t samples_cluster{0};
  std::size_t samples_node{0};
  std::size_t summaries{0};
  std::size_t flight_lines{0};  ///< flight dump headers + replayed history
  std::size_t other{0};
};

/// tx -> rx -> auth -> adjust totals, plus trace_id-stitched chains.
struct FunnelReport {
  std::uint64_t beacons_tx{0};
  std::uint64_t beacons_rx{0};
  std::uint64_t auth_ok{0};
  std::uint64_t adjustments{0};  ///< kAdjustment + kAdoption
  std::uint64_t rejects{0};
  std::uint64_t elections{0};
  /// Chains: distinct trace_ids seen with a beacon-tx.
  std::uint64_t chains{0};
  /// Chains whose rx/auth/adjust touched a node other than the sender.
  std::uint64_t cross_node_chains{0};
  /// Median beacon-tx -> first cross-node adjustment latency (µs); NaN
  /// when no chain completed.
  double median_tx_to_adjust_us{
      std::numeric_limits<double>::quiet_NaN()};
};

struct ConvergencePoint {
  double t_s{0.0};
  double err_us{0.0};
};

/// One excursion of the cluster error above the sync threshold after the
/// initial convergence.
struct ErrorSpike {
  double start_s{0.0};
  double peak_us{0.0};
  double peak_t_s{0.0};
  bool recovered{false};   ///< error returned below the threshold
  double recovered_s{0.0};  ///< instant it did (valid when recovered)
};

struct ConvergenceReport {
  std::vector<ConvergencePoint> cluster;  ///< max offset over time
  std::map<std::int64_t, std::vector<ConvergencePoint>> per_node;  // signed
  std::optional<double> first_sync_s;
  std::vector<ErrorSpike> spikes;
  std::optional<double> final_max_offset_us;
};

/// A fault instant to slice a recovery curve around; extracted from run
/// summaries or supplied by the caller (bench results).
struct FaultMark {
  std::string fault;
  std::int64_t node{-1};
  double t_s{0.0};
  double resync_s{-1.0};  ///< from the summary's recovery record; <0 unknown
  bool recovered{false};
};

struct RecoveryCurve {
  FaultMark mark;
  std::vector<ConvergencePoint> curve;  ///< cluster error around the fault
};

class TraceAnalysis {
 public:
  /// Reads and indexes every path; returns nullopt only on I/O failure
  /// (unreadable file) — malformed content is skipped and counted.
  [[nodiscard]] static std::optional<TraceAnalysis> load(
      const std::vector<std::string>& paths, std::string* error,
      const AnalyzerOptions& options = {});

  [[nodiscard]] const LoadStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<FaultMark>& fault_marks() const {
    return fault_marks_;
  }

  [[nodiscard]] FunnelReport funnel() const;
  [[nodiscard]] ConvergenceReport convergence() const;

  /// Cluster error sliced to [mark - pre_s, mark + post_s] per mark.
  [[nodiscard]] std::vector<RecoveryCurve> recovery_curves(
      const std::vector<FaultMark>& marks, double pre_s = 2.0,
      double post_s = 15.0) const;
  /// Same, against the marks found in loaded run summaries.
  [[nodiscard]] std::vector<RecoveryCurve> recovery_curves(
      double pre_s = 2.0, double post_s = 15.0) const {
    return recovery_curves(fault_marks_, pre_s, post_s);
  }

  /// All loaded lines, time-ordered (stable for ties), one JSONL per line.
  bool write_merged_jsonl(const std::string& path, std::string* error) const;
  /// CSV "t_s,node,err_us,synced": cluster max rows (node = -1) + per-node
  /// signed errors — ready for pandas/gnuplot convergence plots.
  bool write_timeline_csv(const std::string& path, std::string* error) const;
  /// Chrome-trace-event JSON loadable in ui.perfetto.dev (the document
  /// shape of obs/timeline.h): protocol events as per-node instants with
  /// trace_id flow arrows, cluster telemetry as counter tracks, fault marks
  /// as global instants — `sstsp_tracetool timeline` converts existing
  /// JSONL/flight dumps post-hoc.
  bool write_timeline_trace(const std::string& path, std::string* error) const;
  /// CSV "fault,node,fault_t_s,t_s,err_us": one block per recovery curve.
  static bool write_curves_csv(const std::vector<RecoveryCurve>& curves,
                               const std::string& path, std::string* error);

  /// Human-readable report (stats + funnel + convergence + recovery).
  void print_report(std::ostream& os) const;

 private:
  struct Row {
    double t_s{0.0};
    int file_index{0};
    std::string line;  // verbatim, for merged output
  };
  struct EventRow {
    double t_s{0.0};
    std::int64_t node{-1};
    EventKind kind{EventKind::kEventKindCount};
    std::int64_t peer{-1};
    double value_us{0.0};
    std::uint64_t trace_id{0};
  };

  AnalyzerOptions opt_;
  LoadStats stats_;
  std::vector<Row> rows_;            // every parsed line
  std::vector<EventRow> events_;     // live (non-flight) events only
  std::vector<obs::TelemetrySample> cluster_samples_;
  std::vector<FaultMark> fault_marks_;
};

}  // namespace sstsp::trace
