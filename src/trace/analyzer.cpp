#include "trace/analyzer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/timeline.h"

namespace sstsp::trace {

namespace {

using obs::json::Value;

[[nodiscard]] double number_or(const Value& v, std::string_view key,
                               double fallback) {
  const Value* m = v.find(key);
  return m != nullptr && m->is_number() ? m->number : fallback;
}

[[nodiscard]] std::int64_t id_or(const Value& v, std::string_view key,
                                 std::int64_t fallback) {
  const Value* m = v.find(key);
  return m != nullptr && m->is_number()
             ? static_cast<std::int64_t>(m->number)
             : fallback;
}

[[nodiscard]] std::string string_or(const Value& v, std::string_view key,
                                    std::string fallback) {
  const Value* m = v.find(key);
  return m != nullptr && m->is_string() ? m->string : fallback;
}

[[nodiscard]] bool bool_or(const Value& v, std::string_view key,
                           bool fallback) {
  const Value* m = v.find(key);
  return m != nullptr && m->kind == Value::Kind::kBool ? m->boolean : fallback;
}

/// Per-trace_id lifecycle accumulator for the funnel stitcher.
struct Chain {
  std::int64_t tx_node = -1;
  double tx_t_s = -1.0;
  bool cross_node = false;
  double first_remote_adjust_s = -1.0;
};

[[nodiscard]] double median(std::vector<double>& v) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

std::optional<TraceAnalysis> TraceAnalysis::load(
    const std::vector<std::string>& paths, std::string* error,
    const AnalyzerOptions& options) {
  TraceAnalysis out;
  out.opt_ = options;
  int file_index = 0;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      if (error != nullptr) *error = "cannot open " + path;
      return std::nullopt;
    }
    ++out.stats_.files;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++out.stats_.lines;
      const auto parsed = obs::json::parse(line);
      if (!parsed || !parsed->is_object()) {
        // Torn tail of a crashed writer, truncated copy, stray text:
        // count it and move on — a post-mortem tool must never abort on
        // the very artifact of the crash it is analyzing.
        ++out.stats_.torn;
        continue;
      }
      const Value& v = *parsed;
      const std::string type = string_or(v, "type", "");
      // Flight-recorder replays carry "flight_seq": they duplicate events
      // and samples already (or never) seen live, so they are merged for
      // reading but excluded from funnel/convergence accounting.
      const bool flight = v.find("flight_seq") != nullptr ||
                          type == "flight_dump" || type == "flight_dump_end";
      const double t_s = number_or(v, "t_s", 0.0);
      out.rows_.push_back(Row{t_s, file_index, line});

      if (flight) {
        ++out.stats_.flight_lines;
        continue;
      }
      if (type == "event") {
        ++out.stats_.events;
        EventRow e;
        e.t_s = t_s;
        e.node = id_or(v, "node", -1);
        const auto kind = kind_from_string(string_or(v, "kind", ""));
        e.kind = kind.value_or(EventKind::kEventKindCount);
        e.peer = id_or(v, "peer", -1);
        e.value_us = number_or(v, "value_us", 0.0);
        const Value* tid = v.find("trace_id");
        if (tid != nullptr && tid->is_number()) {
          e.trace_id = static_cast<std::uint64_t>(tid->number);
        }
        out.events_.push_back(e);
      } else if (type == "telemetry") {
        if (const auto s = obs::telemetry_from_json(v)) {
          if (s->node < 0) {
            ++out.stats_.samples_cluster;
            out.cluster_samples_.push_back(*s);
          } else {
            ++out.stats_.samples_node;
          }
        } else {
          // Right type, wrong schema version or mangled payload.
          ++out.stats_.torn;
        }
      } else if (type == "summary") {
        ++out.stats_.summaries;
        const Value* recovery = v.find("recovery");
        const Value* records =
            recovery != nullptr ? recovery->find("records") : nullptr;
        if (records != nullptr && records->is_array()) {
          for (const Value& r : records->array) {
            FaultMark mark;
            mark.fault = string_or(r, "fault", "fault");
            mark.node = id_or(r, "node", -1);
            mark.t_s = number_or(r, "t_s", 0.0);
            mark.resync_s = number_or(r, "resync_s", -1.0);
            mark.recovered = bool_or(r, "recovered", false);
            out.fault_marks_.push_back(std::move(mark));
          }
        }
      } else {
        ++out.stats_.other;
      }
    }
    ++file_index;
  }
  // Time-order everything once; stable sort keeps same-instant lines in
  // their per-file emission order.
  std::stable_sort(out.rows_.begin(), out.rows_.end(),
                   [](const Row& a, const Row& b) { return a.t_s < b.t_s; });
  std::stable_sort(
      out.events_.begin(), out.events_.end(),
      [](const EventRow& a, const EventRow& b) { return a.t_s < b.t_s; });
  std::stable_sort(out.cluster_samples_.begin(), out.cluster_samples_.end(),
                   [](const obs::TelemetrySample& a,
                      const obs::TelemetrySample& b) { return a.t_s < b.t_s; });
  std::stable_sort(
      out.fault_marks_.begin(), out.fault_marks_.end(),
      [](const FaultMark& a, const FaultMark& b) { return a.t_s < b.t_s; });
  return out;
}

FunnelReport TraceAnalysis::funnel() const {
  FunnelReport rep;
  std::map<std::uint64_t, Chain> chains;
  for (const EventRow& e : events_) {
    switch (e.kind) {
      case EventKind::kBeaconTx:
        ++rep.beacons_tx;
        break;
      case EventKind::kBeaconRx:
        ++rep.beacons_rx;
        break;
      case EventKind::kAuthOk:
        ++rep.auth_ok;
        break;
      case EventKind::kAdjustment:
      case EventKind::kAdoption:
        ++rep.adjustments;
        break;
      case EventKind::kRejectGuard:
      case EventKind::kRejectInterval:
      case EventKind::kRejectKey:
      case EventKind::kRejectMac:
        ++rep.rejects;
        break;
      case EventKind::kElectionWon:
        ++rep.elections;
        break;
      default:
        break;
    }
    if (e.trace_id == 0) continue;
    Chain& c = chains[e.trace_id];
    if (e.kind == EventKind::kBeaconTx) {
      c.tx_node = e.node;
      c.tx_t_s = e.t_s;
    } else if (c.tx_node >= 0 && e.node != c.tx_node) {
      c.cross_node = true;
      if ((e.kind == EventKind::kAdjustment ||
           e.kind == EventKind::kAdoption) &&
          c.first_remote_adjust_s < 0.0) {
        c.first_remote_adjust_s = e.t_s;
      }
    }
  }
  std::vector<double> latencies_us;
  for (const auto& [id, c] : chains) {
    if (c.tx_node < 0) continue;  // rx-only fragment (file subset)
    ++rep.chains;
    if (c.cross_node) ++rep.cross_node_chains;
    if (c.first_remote_adjust_s >= 0.0) {
      latencies_us.push_back((c.first_remote_adjust_s - c.tx_t_s) * 1e6);
    }
  }
  rep.median_tx_to_adjust_us = median(latencies_us);
  return rep;
}

ConvergenceReport TraceAnalysis::convergence() const {
  ConvergenceReport rep;
  for (const obs::TelemetrySample& s : cluster_samples_) {
    if (std::isfinite(s.max_offset_us)) {
      rep.cluster.push_back({s.t_s, s.max_offset_us});
    }
    for (const auto& ne : s.node_errors) {
      rep.per_node[ne.node].push_back({s.t_s, ne.err_us});
    }
  }
  // First sync, then spikes: one pass over the cluster max-error series.
  const double thr = opt_.sync_threshold_us;
  bool synced_once = false;
  bool in_spike = false;
  for (const ConvergencePoint& p : rep.cluster) {
    const bool below = p.err_us <= thr;
    if (!synced_once) {
      if (below) {
        synced_once = true;
        rep.first_sync_s = p.t_s;
      }
      continue;
    }
    if (!in_spike && !below) {
      in_spike = true;
      rep.spikes.push_back({p.t_s, p.err_us, p.t_s, false, 0.0});
    } else if (in_spike) {
      ErrorSpike& spike = rep.spikes.back();
      if (!below) {
        if (p.err_us > spike.peak_us) {
          spike.peak_us = p.err_us;
          spike.peak_t_s = p.t_s;
        }
      } else {
        spike.recovered = true;
        spike.recovered_s = p.t_s;
        in_spike = false;
      }
    }
  }
  if (!rep.cluster.empty()) {
    rep.final_max_offset_us = rep.cluster.back().err_us;
  }
  return rep;
}

std::vector<RecoveryCurve> TraceAnalysis::recovery_curves(
    const std::vector<FaultMark>& marks, double pre_s, double post_s) const {
  const ConvergenceReport conv = convergence();
  std::vector<RecoveryCurve> curves;
  curves.reserve(marks.size());
  for (const FaultMark& mark : marks) {
    RecoveryCurve curve;
    curve.mark = mark;
    for (const ConvergencePoint& p : conv.cluster) {
      if (p.t_s >= mark.t_s - pre_s && p.t_s <= mark.t_s + post_s) {
        curve.curve.push_back(p);
      }
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

bool TraceAnalysis::write_merged_jsonl(const std::string& path,
                                       std::string* error) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  for (const Row& row : rows_) out << row.line << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool TraceAnalysis::write_timeline_csv(const std::string& path,
                                       std::string* error) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << "t_s,node,err_us,synced\n";
  for (const obs::TelemetrySample& s : cluster_samples_) {
    if (std::isfinite(s.max_offset_us)) {
      const bool synced = s.max_offset_us <= opt_.sync_threshold_us;
      out << s.t_s << ",-1," << s.max_offset_us << ',' << (synced ? 1 : 0)
          << '\n';
    }
    for (const auto& ne : s.node_errors) {
      out << s.t_s << ',' << ne.node << ',' << ne.err_us << ','
          << (ne.synced ? 1 : 0) << '\n';
    }
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool TraceAnalysis::write_timeline_trace(const std::string& path,
                                         std::string* error) const {
  obs::TimelineWriter w;
  if (!w.open(path, error)) return false;
  for (const EventRow& e : events_) {
    if (e.kind == EventKind::kEventKindCount) continue;  // unknown name
    TraceEvent ev;
    ev.time = sim::SimTime::from_sec_double(e.t_s);
    ev.node = e.node >= 0 ? static_cast<mac::NodeId>(e.node) : mac::kNoNode;
    ev.kind = e.kind;
    ev.peer = e.peer >= 0 ? static_cast<mac::NodeId>(e.peer) : mac::kNoNode;
    ev.value_us = e.value_us;
    ev.trace_id = e.trace_id;
    w.protocol_event(ev);
  }
  for (const obs::TelemetrySample& s : cluster_samples_) {
    if (std::isfinite(s.max_offset_us)) {
      w.counter("cluster max offset (us)", s.t_s, s.max_offset_us);
    }
    w.counter("event queue depth", s.t_s,
              static_cast<double>(s.queue_depth));
  }
  for (const FaultMark& m : fault_marks_) {
    w.mark(m.fault, "fault", m.t_s);
  }
  w.finish();
  return true;
}

bool TraceAnalysis::write_curves_csv(const std::vector<RecoveryCurve>& curves,
                                     const std::string& path,
                                     std::string* error) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << "fault,node,fault_t_s,t_s,err_us\n";
  for (const RecoveryCurve& c : curves) {
    for (const ConvergencePoint& p : c.curve) {
      out << c.mark.fault << ',' << c.mark.node << ',' << c.mark.t_s << ','
          << p.t_s << ',' << p.err_us << '\n';
    }
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

void TraceAnalysis::print_report(std::ostream& os) const {
  os << "inputs: " << stats_.files << " file(s), " << stats_.lines
     << " line(s)";
  if (stats_.torn > 0) os << ", " << stats_.torn << " torn (skipped)";
  os << '\n';
  os << "records: " << stats_.events << " event(s), " << stats_.samples_cluster
     << " cluster + " << stats_.samples_node << " node sample(s), "
     << stats_.summaries << " summary record(s), " << stats_.flight_lines
     << " flight line(s)\n";

  const FunnelReport fr = funnel();
  os << "funnel: tx " << fr.beacons_tx << " -> rx " << fr.beacons_rx
     << " -> auth " << fr.auth_ok << " -> adjust " << fr.adjustments << " ("
     << fr.rejects << " rejected, " << fr.elections << " election(s))\n";
  os << "chains: " << fr.chains << " beacon(s) stitched, "
     << fr.cross_node_chains << " cross-node";
  if (std::isfinite(fr.median_tx_to_adjust_us)) {
    os << ", median tx->adjust " << fr.median_tx_to_adjust_us << " us";
  }
  os << '\n';

  const ConvergenceReport conv = convergence();
  os << "convergence (threshold " << opt_.sync_threshold_us << " us): ";
  if (conv.cluster.empty()) {
    os << "no cluster telemetry\n";
  } else {
    if (conv.first_sync_s) {
      os << "first sync at " << *conv.first_sync_s << " s";
    } else {
      os << "never converged";
    }
    if (conv.final_max_offset_us) {
      os << ", final max offset " << *conv.final_max_offset_us << " us";
    }
    os << '\n';
    for (const ErrorSpike& spike : conv.spikes) {
      os << "  spike at " << spike.start_s << " s, peak " << spike.peak_us
         << " us @ " << spike.peak_t_s << " s, ";
      if (spike.recovered) {
        os << "re-converged at " << spike.recovered_s << " s (+"
           << spike.recovered_s - spike.start_s << " s)";
      } else {
        os << "not re-converged by end of data";
      }
      os << '\n';
    }
  }

  if (!fault_marks_.empty()) {
    os << "recovery (from run summaries):\n";
    for (const FaultMark& mark : fault_marks_) {
      os << "  " << mark.fault;
      if (mark.node >= 0) os << " node " << mark.node;
      os << " at " << mark.t_s << " s: ";
      if (mark.resync_s >= 0.0) {
        os << "resync " << mark.resync_s << " s";
      } else {
        os << (mark.recovered ? "recovered" : "not recovered");
      }
      os << '\n';
    }
  }
}

}  // namespace sstsp::trace
