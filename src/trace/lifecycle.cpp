#include "trace/lifecycle.h"

namespace sstsp::trace {

BeaconLifecycle::BeaconLifecycle(obs::Registry& registry,
                                 std::size_t capacity)
    : capacity_(capacity),
      traced_(&registry.counter("beacon.traced")),
      rx_(&registry.counter("beacon.rx")),
      auth_ok_(&registry.counter("beacon.auth_ok")),
      adjust_(&registry.counter("beacon.adjust")),
      rejected_(&registry.counter("beacon.rejected")),
      tx_to_rx_us_(&registry.histogram("beacon.tx_to_rx_us")),
      tx_to_auth_us_(&registry.histogram("beacon.tx_to_auth_us")),
      tx_to_adjust_us_(&registry.histogram("beacon.tx_to_adjust_us")) {}

void BeaconLifecycle::note_tx(const TraceEvent& event) {
  ++tracked_;
  traced_->inc();
  if (spans_.size() >= capacity_ && !order_.empty()) {
    spans_.erase(order_.front());
    order_.pop_front();
  }
  spans_[event.trace_id] = TxSpan{event.time, event.node};
  order_.push_back(event.trace_id);
}

const BeaconLifecycle::TxSpan* BeaconLifecycle::find(
    std::uint64_t trace_id) const {
  const auto it = spans_.find(trace_id);
  return it == spans_.end() ? nullptr : &it->second;
}

void BeaconLifecycle::on_event(const TraceEvent& event) {
  if (event.trace_id == 0) return;
  switch (event.kind) {
    case EventKind::kBeaconTx:
      note_tx(event);
      break;
    case EventKind::kBeaconRx:
      rx_->inc();
      if (const TxSpan* tx = find(event.trace_id)) {
        tx_to_rx_us_->record((event.time - tx->tx_time).to_us());
      }
      break;
    case EventKind::kAuthOk:
      auth_ok_->inc();
      if (const TxSpan* tx = find(event.trace_id)) {
        tx_to_auth_us_->record((event.time - tx->tx_time).to_us());
      }
      break;
    case EventKind::kAdjustment:
      adjust_->inc();
      if (const TxSpan* tx = find(event.trace_id)) {
        tx_to_adjust_us_->record((event.time - tx->tx_time).to_us());
      }
      break;
    case EventKind::kRejectGuard:
    case EventKind::kRejectInterval:
    case EventKind::kRejectKey:
    case EventKind::kRejectMac:
      rejected_->inc();
      break;
    default:
      break;
  }
}

}  // namespace sstsp::trace
