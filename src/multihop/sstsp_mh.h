// SstspMh — multi-hop SSTSP (the paper's stated future work, built on the
// single-hop components: BeaconSigner/SenderPipeline for µTESLA, the
// (k, b) adjustment solver, and the coarse-sync filters).
//
// Roles:
//   * The reference (level 0) behaves exactly as in single-hop SSTSP:
//     one secured beacon at every T^j.
//   * A synchronized follower at level L (= its upstream's level + 1)
//     re-emits a secured beacon at T^j + L * stagger + own_slot, signed
//     with its own chain and carrying its own adjusted timestamp — but
//     only in intervals where it actually accepted an upstream beacon
//     (stale time is never relayed).
//   * Followers track the lowest-level sender they hear; the adjustment
//     solver is the unmodified single-hop one (a constant per-upstream
//     emission offset is absorbed by the rate extrapolation of eq. (4)).
//
// Security carries over per hop: each relay's beacons are µTESLA-verified
// against its own published anchor, and the guard bounds how far any
// single relay can pull its subtree per beacon.  The guard compares the
// timestamp against the *expected* offset for the claimed level
// (level * stagger + slot window), so a relay lying about its level gains
// at most one stagger of slack.
//
// Liveness: if the whole upstream tree falls silent, takeover is
// level-staggered — a node waits takeover_patience + 2*level BPs before
// seizing the reference role, so the node closest to the old reference
// wins and the rebuilt tree re-captures deeper nodes before their own
// timers expire.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "clock/adjusted_clock.h"
#include "core/adjustment.h"
#include "core/beacon_security.h"
#include "core/key_directory.h"
#include "multihop/mh_config.h"
#include "protocols/station.h"
#include "protocols/sync_protocol.h"

namespace sstsp::multihop {

class SstspMh : public proto::SyncProtocol {
 public:
  static constexpr std::uint8_t kNoLevel = 0xFF;

  struct Options {
    bool start_as_reference = false;
  };

  SstspMh(proto::Station& station, const MultiHopConfig& cfg,
          core::KeyDirectory& directory, Options options);

  void start() override;
  void stop() override;
  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override;

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return adjusted_.read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override { return synced_; }
  [[nodiscard]] bool is_reference() const override { return reference_; }

  /// Hop distance from the reference (kNoLevel until first adoption).
  [[nodiscard]] std::uint8_t level() const { return level_; }
  [[nodiscard]] mac::NodeId upstream() const { return upstream_; }
  [[nodiscard]] const clk::AdjustedClock& adjusted() const {
    return adjusted_;
  }

 private:
  struct SenderTrack {
    SenderTrack(crypto::Digest anchor, crypto::MuTeslaSchedule schedule,
                crypto::VerifyCache* cache)
        : pipeline(anchor, schedule, cache) {}
    core::SenderPipeline pipeline;
    std::deque<core::RefSample> samples;  // newest at back; at most 2
    std::uint8_t level{kNoLevel};
    std::int64_t last_seen_interval{-1};
  };

  void schedule_tick();
  void handle_tick(std::int64_t j);
  void schedule_emission(std::int64_t j);
  void handle_emission(std::int64_t j);
  void transmit_beacon(std::int64_t j);
  void try_adjust(SenderTrack& track, std::int64_t cur_interval);
  SenderTrack* track_for(mac::NodeId sender);
  [[nodiscard]] double effective_guard_us(double hw_now_us) const;
  [[nodiscard]] double adjusted_now() const {
    return adjusted_.read_us(station_.sim().now());
  }
  void cancel_tx_event();

  MultiHopConfig cfg_;
  core::KeyDirectory& directory_;
  crypto::MuTeslaSchedule schedule_;
  clk::AdjustedClock adjusted_;
  core::BeaconSigner signer_;
  Options options_;

  bool running_{false};
  bool reference_{false};
  bool synced_{false};
  std::uint8_t level_{kNoLevel};
  mac::NodeId upstream_{mac::kNoNode};
  int relay_slot_;  // fixed per node

  std::unordered_map<mac::NodeId, SenderTrack> tracks_;
  std::int64_t last_upstream_interval_{-1};
  std::int64_t last_tick_j_{INT64_MIN};
  int silent_bps_{0};
  double last_sync_hw_us_{0.0};

  sim::EventId tick_event_{0};
  sim::EventId tx_event_{0};
};

}  // namespace sstsp::multihop
