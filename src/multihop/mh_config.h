// Configuration for the multi-hop SSTSP extension (the paper's §6 future
// work: "extending SSTSP to multi-hop ad hoc networks").
//
// Design (documented in DESIGN.md §7): the reference beacons at T^j as in
// single-hop SSTSP; synchronized nodes at hop distance (level) L re-emit a
// beacon — signed with their *own* hash chain, carrying their own adjusted
// timestamp and their level — at T^j + L * relay_stagger, inside a small
// deterministic per-node slot.  Nodes follow the lowest-level upstream they
// hear, so timing information floods outward one stagger per hop, and
// estimation error accumulates per hop (the classical multi-hop trade-off).
// Every relay hop is authenticated end-to-middle: µTESLA per relay, trust
// transitive through synchronized relays, with the same guard/interval
// bounds per hop.
#pragma once

#include "core/sstsp_config.h"

namespace sstsp::multihop {

struct MultiHopConfig {
  /// All single-hop SSTSP parameters (guard, m, chain length, ...).
  core::SstspConfig base{};

  /// Per-level emission offset: level-L relays emit at T^j + L * stagger.
  /// Must exceed beacon air time + processing so each level can re-emit
  /// information received in the same interval.
  double relay_stagger_us = 2000.0;

  /// Relays pick a *fixed* slot (id-derived) in [0, relay_window] within
  /// their stagger window: deterministic, so it adds no timestamp jitter,
  /// but spread out, so nearby same-level relays usually defer via CSMA
  /// instead of colliding.
  int relay_window = 16;

  /// Deepest level that still relays (bounds flood depth and beacon count).
  int max_level = 8;

  /// Rate-estimation baseline in beacon intervals.  Single-hop SSTSP uses
  /// adjacent beacons (baseline 1); in a relay cascade each hop re-amplifies
  /// its upstream's timestamp noise by the rate-extrapolation factor, so
  /// adjacent-beacon estimation has per-hop gain > 1 and deep lines diverge
  /// exponentially.  A baseline of B divides the rate noise by B and brings
  /// the cascade gain below 1.  (See DESIGN.md §7.)
  int rate_baseline_bps = 6;

  /// Intervals of total silence a node tolerates before concluding the
  /// tree is gone.  Takeover is level-staggered (closest nodes first); this
  /// must exceed the tree build-out time at the configured depth.
  int takeover_patience_bps = 50;

  /// Broadcast domain this relay tree lives in (mac::Frame::domain).  The
  /// prototype predates the cluster layer; the tag lets a relay tree coexist
  /// with the multi-domain scenarios without cross-talk.
  std::uint8_t domain = 0;
};

}  // namespace sstsp::multihop
