#include "multihop/sstsp_mh.h"

#include <algorithm>
#include <cmath>

#include "cluster/cluster_config.h"

namespace sstsp::multihop {

namespace {
constexpr double kTickFraction = 0.75;
}

SstspMh::SstspMh(proto::Station& station, const MultiHopConfig& cfg,
                 core::KeyDirectory& directory, Options options)
    : SyncProtocol(station),
      cfg_(cfg),
      directory_(directory),
      schedule_{cfg.base.t0_us,
                station.channel().phy().beacon_period.to_us(),
                cfg.base.chain_length},
      adjusted_(&station.hw()),
      signer_(directory.chain_of(station.id()).value(), schedule_),
      options_(options),
      relay_slot_(static_cast<int>(station.id()) %
                  (cfg.relay_window + 1)) {}

void SstspMh::start() {
  running_ = true;
  tracks_.clear();
  last_upstream_interval_ = -1;
  last_tick_j_ = INT64_MIN;
  silent_bps_ = 0;
  last_sync_hw_us_ = station_.hw_us_now();
  reference_ = options_.start_as_reference;
  if (reference_) {
    level_ = 0;
    synced_ = true;
  } else {
    level_ = kNoLevel;
    synced_ = false;
  }
  schedule_tick();
}

void SstspMh::stop() {
  running_ = false;
  if (tick_event_ != 0) {
    station_.sim().cancel(tick_event_);
    tick_event_ = 0;
  }
  cancel_tx_event();
}

void SstspMh::cancel_tx_event() {
  if (tx_event_ != 0) {
    station_.sim().cancel(tx_event_);
    tx_event_ = 0;
  }
}

double SstspMh::effective_guard_us(double hw_now_us) const {
  return core::effective_guard_us(cfg_.base, hw_now_us, last_sync_hw_us_);
}

void SstspMh::schedule_tick() {
  if (tick_event_ != 0) station_.sim().cancel(tick_event_);
  const double bp = schedule_.interval_us;
  auto next_j =
      static_cast<std::int64_t>(std::floor(adjusted_now() / bp -
                                           kTickFraction)) +
      1;
  if (next_j <= last_tick_j_) next_j = last_tick_j_ + 1;
  const double tick_time =
      schedule_.emission_time(next_j) + kTickFraction * bp;
  tick_event_ = station_.sim().at(adjusted_.real_at(tick_time),
                                  [this, next_j] { handle_tick(next_j); });
}

void SstspMh::handle_tick(std::int64_t j) {
  tick_event_ = 0;
  if (!running_) return;
  last_tick_j_ = j;

  if (reference_) {
    schedule_emission(j + 1);
  } else {
    if (last_upstream_interval_ < j) {
      ++silent_bps_;
      // Level-staggered takeover: closest survivors first.
      const int patience =
          cfg_.takeover_patience_bps +
          2 * static_cast<int>(level_ == kNoLevel ? cfg_.max_level : level_);
      if (synced_ && silent_bps_ >= patience) {
        reference_ = true;
        level_ = 0;
        ++stats_.elections_won;
        schedule_emission(j + 1);
      }
    } else {
      silent_bps_ = 0;
    }
    // Relay duty for the next interval (conditional at fire time on having
    // fresh upstream data for it).
    if (!reference_ && synced_ && level_ != kNoLevel &&
        level_ <= cfg_.max_level) {
      schedule_emission(j + 1);
    }
  }
  schedule_tick();
}

void SstspMh::schedule_emission(std::int64_t j) {
  if (j < 1 || static_cast<std::size_t>(j) > schedule_.n) return;
  const double stagger =
      reference_ ? 0.0
                 : cluster::stagger_offset_us(level_, relay_slot_,
                                              cfg_.relay_stagger_us, 9.0);
  cancel_tx_event();
  tx_event_ =
      station_.sim().at(adjusted_.real_at(schedule_.emission_time(j) + stagger),
                        [this, j] { handle_emission(j); });
}

void SstspMh::handle_emission(std::int64_t j) {
  tx_event_ = 0;
  if (!running_) return;
  if (!reference_) {
    // Relay only fresh time: an upstream beacon for this very interval must
    // have been accepted already (it arrived one stagger earlier).
    if (last_upstream_interval_ < j) return;
    if (station_.medium_busy(station_.sim().now())) return;  // spatial reuse
  }
  transmit_beacon(j);
}

void SstspMh::transmit_beacon(std::int64_t j) {
  const auto& phy = station_.channel().phy();
  const auto ts = static_cast<std::int64_t>(std::floor(adjusted_now()));
  mac::Frame frame;
  frame.sender = station_.id();
  frame.air_bytes = phy.sstsp_beacon_bytes + 1;  // + level byte
  frame.domain = cfg_.domain;
  frame.body = signer_.sign(j, ts, station_.id(), level_);
  station_.transmit(std::move(frame), phy.sstsp_beacon_duration);
  ++stats_.beacons_sent;
  if (reference_) last_sync_hw_us_ = station_.hw_us_now();
}

SstspMh::SenderTrack* SstspMh::track_for(mac::NodeId sender) {
  auto it = tracks_.find(sender);
  if (it != tracks_.end()) return &it->second;
  const auto anchor = directory_.anchor_of(sender);
  if (!anchor) return nullptr;
  if (tracks_.size() >= 8) {
    for (auto evict = tracks_.begin(); evict != tracks_.end(); ++evict) {
      if (evict->first != upstream_) {
        tracks_.erase(evict);
        break;
      }
    }
  }
  auto [ins, _] = tracks_.emplace(
      sender, SenderTrack(*anchor, schedule_, &directory_.verify_cache()));
  return &ins->second;
}

void SstspMh::on_receive(const mac::Frame& frame, const mac::RxInfo& rx) {
  if (!frame.is_sstsp()) return;
  if (frame.domain != cfg_.domain) return;  // foreign broadcast domain
  ++stats_.beacons_received;
  const auto& body = frame.sstsp();
  const double c_now = adjusted_.read_us(rx.delivered);
  const double ts_est =
      static_cast<double>(body.timestamp_us) + rx.nominal_delay_us;
  const std::int64_t j = body.interval;

  // Reference ignores relayed copies of its own timeline; deeper levels
  // than our own carry nothing new either.
  if (reference_) return;
  if (level_ != kNoLevel && body.level >= level_ && synced_ &&
      frame.sender != upstream_) {
    return;  // peer or downstream relay: not an upstream for us
  }

  if (!schedule_.interval_check(j, c_now, cfg_.base.interval_slack_us)) {
    ++stats_.rejected_interval;
    return;
  }
  // Guard: a relay stamps its (synchronized) clock at its own staggered
  // emission instant, so ts_est estimates the sender's clock at arrival
  // and the plain difference applies — stagger offsets cancel.
  const double arrival_hw = station_.hw().read_us(rx.delivered);
  if (std::fabs(ts_est - c_now) > effective_guard_us(arrival_hw)) {
    ++stats_.rejected_guard;
    return;
  }

  SenderTrack* track = track_for(frame.sender);
  if (track == nullptr) {
    ++stats_.rejected_key;
    return;
  }
  const core::PipelineResult res =
      track->pipeline.ingest(body, frame.sender, arrival_hw, ts_est);
  if (!res.key_valid) {
    ++stats_.rejected_key;
    return;
  }
  if (res.mac_failed) ++stats_.rejected_mac;

  track->level = body.level;
  track->last_seen_interval = std::max(track->last_seen_interval, j);

  // Upstream selection: adopt the lowest-level live sender.
  const std::uint8_t my_new_level =
      static_cast<std::uint8_t>(std::min<int>(body.level + 1, kNoLevel - 1));
  if (upstream_ == mac::kNoNode || frame.sender == upstream_ ||
      my_new_level < level_) {
    upstream_ = frame.sender;
    level_ = my_new_level;
    last_upstream_interval_ = std::max(last_upstream_interval_, j);
    silent_bps_ = 0;
  }

  if (res.authenticated && frame.sender == upstream_) {
    track->samples.push_back(core::RefSample{
        res.authenticated->arrival_hw_us, res.authenticated->ts_est_us});
    const auto max_samples =
        static_cast<std::size_t>(std::max(cfg_.rate_baseline_bps, 1)) + 1;
    while (track->samples.size() > max_samples) track->samples.pop_front();
    try_adjust(*track, j);
  }
}

void SstspMh::try_adjust(SenderTrack& track, std::int64_t cur_interval) {
  if (reference_ || track.samples.size() < 2) return;
  // Target the shared schedule; the upstream's constant emission offset is
  // absorbed by the rate extrapolation (see DESIGN.md §7).
  const double target = schedule_.emission_time(cur_interval + cfg_.base.m);
  const core::ClockParams previous{adjusted_.k(), adjusted_.b()};
  const core::DisciplineResult outcome = core::solve_adjustment(
      previous, station_.hw_us_now(), track.samples.back(),
      track.samples.front(), target, cfg_.base);
  if (!outcome.params) {
    ++stats_.solver_rejections;
    return;
  }
  adjusted_.set_params(outcome.params->k, outcome.params->b);
  ++stats_.adjustments;
  last_sync_hw_us_ = station_.hw_us_now();
  synced_ = true;
}

}  // namespace sstsp::multihop
