// Structured export of protocol-event traces: JSON Lines.
//
// Each trace event becomes one self-describing JSON object per line:
//
//   {"type":"event","t_s":12.345678,"node":3,"kind":"adjustment",
//    "peer":0,"value_us":-4.25}
//
// "peer" is omitted when the event has none (mac::kNoNode).  The same
// stream conventionally ends with a {"type":"summary",...} record written
// by the run-result serializer (runner/json_report.h), so one file captures
// a whole run; see README "Observability" for jq recipes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>

#include "trace/event_trace.h"

namespace sstsp::obs {

/// Writes one event as a single JSONL line (newline included).
void write_event_jsonl(std::ostream& os, const trace::TraceEvent& event);

/// Dumps the newest `limit` *retained* events of the ring as JSONL.
void write_trace_jsonl(
    std::ostream& os, const trace::EventTrace& trace,
    std::size_t limit = std::numeric_limits<std::size_t>::max());

/// Attaches a streaming JSONL sink: every event recorded from now on is
/// written to `os` immediately (independent of ring-buffer eviction).  The
/// stream must outlive the trace or be detached with set_sink({}).
void attach_jsonl_sink(trace::EventTrace& trace, std::ostream& os);

}  // namespace sstsp::obs
