// Flight recorder: bounded retention of the most recent protocol trace
// events and telemetry samples, dumped as a post-mortem when something goes
// wrong — a new monitor audit record, an unplanned node failure, or an
// operator SIGUSR1.
//
// The trace fan-out (Station::trace_event) already streams every event to
// any attached observer; this adds the *bounded* retention layer so a
// long-lived node can keep its last seconds of history at O(capacity)
// memory, and turn an opaque `kNodeFailure` audit into "here is exactly
// what it did in its final seconds".
//
// Dump format (JSONL, appended to the recorder's sink):
//   {"type":"flight_dump","seq":S,"t_s":...,"reason":R,"trigger":{...}|null,
//    "events_recorded":N,"events_retained":K,"samples_retained":M}
//   {"type":"event",...,"flight_seq":S}        x K   (oldest -> newest)
//   {"type":"telemetry",...,"flight_seq":S}    x M   (oldest -> newest)
//   {"type":"flight_dump_end","seq":S}
// The flight_seq tag lets sstsp_tracetool tell replayed history apart from
// the live streams when both files are merged.
//
// Audit-triggered dumps fire once per *new* audit record class (the monitor
// aggregates repeats into existing records) and are additionally capped, so
// a misbehaving run bounds its post-mortem output; dump-request (SIGUSR1)
// and node-failure dumps are never suppressed.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>

#include "obs/invariants.h"
#include "obs/telemetry.h"
#include "trace/event_trace.h"

namespace sstsp::obs {

class FlightRecorder {
 public:
  struct Config {
    std::size_t event_capacity{512};
    std::size_t sample_capacity{64};
    /// Cap on audit-record-triggered dumps (later triggers are counted but
    /// not dumped); explicit dump()/dump-request calls are never capped.
    std::size_t max_audit_dumps{8};
  };

  /// The sink is borrowed and must outlive the recorder; nullptr disables
  /// dumping (events are still retained, for tests to inspect).
  FlightRecorder(const Config& config, JsonlSink* sink)
      : cfg_(config), sink_(sink) {}

  /// Ring-buffer push; oldest event evicted at capacity.
  void on_trace_event(const trace::TraceEvent& event);

  /// Retains the newest telemetry samples alongside the events.
  void on_sample(const TelemetrySample& sample);

  /// Audit trigger path: dumps with reason "audit-record" unless the
  /// audit-dump cap is exhausted.
  void on_audit_record(double now_s, const AuditRecord& record);

  /// Writes one complete dump of the retained history to the sink.
  /// `reason` is free-form ("audit-record", "node-failure",
  /// "dump-request"); `trigger` optionally attaches the audit record that
  /// fired the dump.
  void dump(double now_s, std::string_view reason,
            const AuditRecord* trigger);

  [[nodiscard]] std::uint64_t events_recorded() const {
    return events_recorded_;
  }
  [[nodiscard]] std::size_t events_retained() const { return events_.size(); }
  [[nodiscard]] std::size_t samples_retained() const {
    return samples_.size();
  }
  [[nodiscard]] std::uint64_t dumps_written() const { return dumps_; }
  [[nodiscard]] std::uint64_t audit_dumps_suppressed() const {
    return audit_suppressed_;
  }
  [[nodiscard]] const std::deque<trace::TraceEvent>& events() const {
    return events_;
  }

 private:
  Config cfg_;
  JsonlSink* sink_;
  std::deque<trace::TraceEvent> events_;
  std::deque<TelemetrySample> samples_;
  std::uint64_t events_recorded_{0};
  std::uint64_t dumps_{0};
  std::uint64_t audit_dumps_{0};
  std::uint64_t audit_suppressed_{0};
};

}  // namespace sstsp::obs
