#include "obs/timeline.h"

#include <cstdio>
#include <map>
#include <utility>

#include "obs/json.h"

namespace sstsp::obs {

namespace {

// Trace-event "process" ids: one per clock domain (header comment).
constexpr int kProtocolPid = 1;
constexpr int kProfilerPid = 2;
// Virtual-time track for fault marks + audit records, away from node ids.
constexpr std::int64_t kMarksTid = 1'000'000;

std::string json_string(std::string_view s) {
  return '"' + json::escape(s) + '"';
}

// Fixed-point microseconds: trace-event ts values are conventionally
// integral-or-few-decimals; printf-style %.3f keeps files compact and
// deterministic across libc float formatting.
std::string format_ts(double ts_us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  return buf;
}

}  // namespace

bool TimelineWriter::open(const std::string& path, std::string* error,
                          const Options& options) {
  os_.open(path, std::ios::out | std::ios::trunc);
  if (!os_.is_open()) {
    if (error != nullptr) *error = "cannot open timeline output: " + path;
    return false;
  }
  opt_ = options;
  finished_ = false;
  first_ = true;
  written_ = 0;
  dropped_ = 0;
  wall_anchored_ = false;
  named_nodes_.clear();
  seen_flows_.clear();
  os_ << "{\"traceEvents\":[";
  metadata(kProtocolPid, -1, "process_name", "protocol (virtual time)");
  metadata(kProfilerPid, -1, "process_name", "profiler (wall time)");
  metadata(kProfilerPid, 0, "thread_name", "phase stack");
  metadata(kProtocolPid, kMarksTid, "thread_name", "marks");
  return true;
}

bool TimelineWriter::begin_event() {
  if (!is_open()) return false;
  if (written_ >= opt_.max_events) {
    ++dropped_;
    return false;
  }
  if (!first_) os_ << ",";
  os_ << "\n";
  first_ = false;
  ++written_;
  return true;
}

void TimelineWriter::metadata(int pid, std::int64_t tid, std::string_view what,
                              std::string_view name) {
  // Metadata events are bounded by the track count, not the run length, so
  // they bypass the event cap.
  if (!os_.is_open() || finished_) return;
  if (!first_) os_ << ",";
  os_ << "\n";
  first_ = false;
  os_ << "{\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) os_ << ",\"tid\":" << tid;
  os_ << ",\"name\":" << json_string(what) << ",\"args\":{\"name\":"
      << json_string(name) << "}}";
}

void TimelineWriter::ensure_node_track(std::int64_t node) {
  if (named_nodes_.insert(node).second) {
    metadata(kProtocolPid, node, "thread_name",
             "node " + std::to_string(node));
  }
}

void TimelineWriter::protocol_event(const trace::TraceEvent& event) {
  const auto node = static_cast<std::int64_t>(event.node);
  ensure_node_track(node);
  const std::string ts = format_ts(event.time.to_sec() * 1e6);
  if (begin_event()) {
    os_ << "{\"name\":" << json_string(trace::to_string(event.kind))
        << ",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
        << ",\"pid\":" << kProtocolPid << ",\"tid\":" << node << ",\"args\":{";
    if (event.peer != mac::kNoNode) {
      os_ << "\"peer\":" << static_cast<std::int64_t>(event.peer) << ",";
    }
    os_ << "\"value_us\":" << format_ts(event.value_us)
        << ",\"trace_id\":" << event.trace_id << "}}";
  }
  if (event.trace_id == 0) return;
  // Beacon-lifecycle chain: first sighting starts the flow, later events
  // step it, keyed by the channel-assigned transmission id.
  const bool fresh = seen_flows_.insert(event.trace_id).second;
  if (begin_event()) {
    os_ << "{\"name\":\"beacon\",\"cat\":\"beacon-flow\",\"ph\":\""
        << (fresh ? 's' : 't') << "\",\"id\":" << event.trace_id
        << ",\"ts\":" << ts << ",\"pid\":" << kProtocolPid
        << ",\"tid\":" << node << "}";
  }
}

void TimelineWriter::phase_begin(Phase phase, std::uint64_t wall_ns) {
  if (!wall_anchored_) {
    wall_anchor_ns_ = wall_ns;
    wall_anchored_ = true;
  }
  if (!begin_event()) return;
  os_ << "{\"name\":" << json_string(phase_name(phase))
      << ",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":"
      << format_ts(static_cast<double>(wall_ns - wall_anchor_ns_) * 1e-3)
      << ",\"pid\":" << kProfilerPid << ",\"tid\":0}";
}

void TimelineWriter::phase_end(Phase phase, std::uint64_t wall_ns) {
  if (!wall_anchored_) {
    wall_anchor_ns_ = wall_ns;
    wall_anchored_ = true;
  }
  if (!begin_event()) return;
  os_ << "{\"name\":" << json_string(phase_name(phase))
      << ",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":"
      << format_ts(static_cast<double>(wall_ns - wall_anchor_ns_) * 1e-3)
      << ",\"pid\":" << kProfilerPid << ",\"tid\":0}";
}

void TimelineWriter::mark(std::string_view name, std::string_view category,
                          double t_s) {
  if (!begin_event()) return;
  os_ << "{\"name\":" << json_string(name) << ",\"cat\":"
      << json_string(category) << ",\"ph\":\"i\",\"s\":\"g\",\"ts\":"
      << format_ts(t_s * 1e6) << ",\"pid\":" << kProtocolPid
      << ",\"tid\":" << kMarksTid << "}";
}

void TimelineWriter::counter(std::string_view name, double t_s, double value) {
  if (!begin_event()) return;
  os_ << "{\"name\":" << json_string(name)
      << ",\"cat\":\"telemetry\",\"ph\":\"C\",\"ts\":" << format_ts(t_s * 1e6)
      << ",\"pid\":" << kProtocolPid << ",\"tid\":0,\"args\":{\"value\":"
      << format_ts(value) << "}}";
}

void TimelineWriter::finish() {
  if (finished_ || !os_.is_open()) return;
  finished_ = true;
  os_ << "\n]}" << '\n';
  os_.close();
}

namespace {

void add_error(std::vector<std::string>* errors, std::size_t index,
               const std::string& what) {
  if (errors == nullptr || errors->size() >= 20) return;
  errors->push_back("traceEvents[" + std::to_string(index) + "]: " + what);
}

bool is_number(const json::Value* v) {
  return v != nullptr && v->is_number();
}

}  // namespace

bool validate_trace_event_json(std::string_view text,
                               std::vector<std::string>* errors) {
  std::size_t before = errors != nullptr ? errors->size() : 0;
  const auto doc = json::parse(text);
  if (!doc || !doc->is_object()) {
    if (errors != nullptr) errors->push_back("not a JSON object");
    return false;
  }
  const json::Value* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (errors != nullptr) errors->push_back("missing traceEvents array");
    return false;
  }
  // Open B-span depth per (pid, tid); unclosed spans at EOF are tolerated
  // (Perfetto auto-closes them), an E without a B is not.
  std::map<std::pair<double, double>, long> depth;
  static const std::string_view kKnownPh = "BEXiIstfCMbe";
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = events->array[i];
    if (!e.is_object()) {
      add_error(errors, i, "not an object");
      continue;
    }
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.size() != 1 ||
        kKnownPh.find(ph->string[0]) == std::string_view::npos) {
      add_error(errors, i, "missing or unknown ph");
      continue;
    }
    const char p = ph->string[0];
    if (p == 'M') continue;  // metadata: no ts/tid requirements
    if (!is_number(e.find("ts"))) add_error(errors, i, "non-numeric ts");
    if (!is_number(e.find("pid"))) add_error(errors, i, "non-numeric pid");
    if (!is_number(e.find("tid"))) add_error(errors, i, "non-numeric tid");
    const json::Value* name = e.find("name");
    const bool has_name = name != nullptr && name->is_string();
    if (p != 'E' && !has_name) add_error(errors, i, "missing name");
    if (p == 'X' && !is_number(e.find("dur"))) {
      add_error(errors, i, "X event without numeric dur");
    }
    if ((p == 's' || p == 't' || p == 'f')) {
      const json::Value* id = e.find("id");
      if (id == nullptr || (!id->is_number() && !id->is_string())) {
        add_error(errors, i, "flow event without id");
      }
    }
    if (p == 'B' || p == 'E') {
      const json::Value* pid = e.find("pid");
      const json::Value* tid = e.find("tid");
      if (pid != nullptr && pid->is_number() && tid != nullptr &&
          tid->is_number()) {
        long& d = depth[{pid->number, tid->number}];
        if (p == 'B') {
          ++d;
        } else if (--d < 0) {
          add_error(errors, i, "E without matching B");
          d = 0;
        }
      }
    }
  }
  return errors == nullptr || errors->size() == before;
}

}  // namespace sstsp::obs
