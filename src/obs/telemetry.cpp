#include "obs/telemetry.h"

#include <chrono>
#include <cmath>
#include <sstream>

#include "obs/json.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace sstsp::obs {
namespace {

// key + double-or-null (non-finite doubles already emit as null via the
// Writer, but spell the intent out for the schema's "omitted" fields).
void kv_opt(json::Writer& w, std::string_view key, double v) {
  if (std::isfinite(v)) {
    w.kv(key, v);
  } else {
    w.kv_null(key);
  }
}

void kv_opt_id(json::Writer& w, std::string_view key, std::int64_t id) {
  if (id >= 0) {
    w.kv(key, id);
  } else {
    w.kv_null(key);
  }
}

double number_or(const json::Value& v, std::string_view key, double fallback) {
  const json::Value* m = v.find(key);
  return (m != nullptr && m->is_number()) ? m->number : fallback;
}

std::uint64_t u64_or(const json::Value& v, std::string_view key,
                     std::uint64_t fallback) {
  const json::Value* m = v.find(key);
  if (m == nullptr || !m->is_number() || m->number < 0) return fallback;
  return static_cast<std::uint64_t>(m->number);
}

std::int64_t id_or(const json::Value& v, std::string_view key) {
  const json::Value* m = v.find(key);
  if (m == nullptr || !m->is_number()) return -1;
  return static_cast<std::int64_t>(m->number);
}

std::uint64_t delta(std::uint64_t current, std::uint64_t previous) {
  // Totals are monotonic; a smaller current means the source restarted
  // (node crash + restart) — report the new total as the interval's delta.
  return current >= previous ? current - previous : current;
}

}  // namespace

void append_json(json::Writer& w, const TelemetrySample& s) {
  w.begin_object();
  w.kv("type", "telemetry");
  w.kv("v", kTelemetrySchemaVersion);
  w.kv("t_s", s.t_s);
  w.kv("source", s.source);
  kv_opt_id(w, "node", s.node);
  w.kv("nodes_total", s.nodes_total);
  w.kv("nodes_awake", s.nodes_awake);
  w.kv("nodes_synced", s.nodes_synced);
  kv_opt_id(w, "reference", s.reference);
  kv_opt(w, "max_offset_us", s.max_offset_us);
  kv_opt(w, "mean_offset_us", s.mean_offset_us);
  w.kv("beacons_tx", s.beacons_tx);
  w.kv("beacons_rx", s.beacons_rx);
  w.kv("adjustments", s.adjustments);
  w.kv("coarse_steps", s.coarse_steps);
  w.kv("rejects", s.rejects);
  w.kv("elections", s.elections);
  w.kv("events", s.events);
  w.kv("queue_depth", s.queue_depth);
  w.kv("audit_records", s.audit_records);
  w.kv("recovery_pending", s.recovery_pending);
  kv_opt_id(w, "rss_kb", s.rss_kb);
  kv_opt(w, "wall_s", s.wall_s);
  if (!s.node_errors.empty()) {
    w.key("per_node").begin_array();
    for (const TelemetrySample::NodeError& e : s.node_errors) {
      w.begin_object();
      w.kv("node", e.node);
      w.kv("err_us", e.err_us);
      w.kv("synced", e.synced);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

std::string telemetry_to_jsonl(const TelemetrySample& sample) {
  std::ostringstream os;
  json::Writer w(os);
  append_json(w, sample);
  return os.str();
}

std::optional<TelemetrySample> telemetry_from_json(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  const json::Value* type = value.find("type");
  if (type == nullptr || !type->is_string() || type->string != "telemetry") {
    return std::nullopt;
  }
  const json::Value* v = value.find("v");
  if (v == nullptr || !v->is_number() ||
      static_cast<int>(v->number) != kTelemetrySchemaVersion) {
    return std::nullopt;
  }

  TelemetrySample s;
  s.t_s = number_or(value, "t_s", 0.0);
  const json::Value* source = value.find("source");
  if (source != nullptr && source->is_string()) s.source = source->string;
  s.node = id_or(value, "node");
  s.nodes_total = static_cast<int>(number_or(value, "nodes_total", 0));
  s.nodes_awake = static_cast<int>(number_or(value, "nodes_awake", 0));
  s.nodes_synced = static_cast<int>(number_or(value, "nodes_synced", 0));
  s.reference = id_or(value, "reference");
  s.max_offset_us = number_or(value, "max_offset_us",
                              std::numeric_limits<double>::quiet_NaN());
  s.mean_offset_us = number_or(value, "mean_offset_us",
                               std::numeric_limits<double>::quiet_NaN());
  s.beacons_tx = u64_or(value, "beacons_tx", 0);
  s.beacons_rx = u64_or(value, "beacons_rx", 0);
  s.adjustments = u64_or(value, "adjustments", 0);
  s.coarse_steps = u64_or(value, "coarse_steps", 0);
  s.rejects = u64_or(value, "rejects", 0);
  s.elections = u64_or(value, "elections", 0);
  s.events = u64_or(value, "events", 0);
  s.queue_depth = u64_or(value, "queue_depth", 0);
  s.audit_records = u64_or(value, "audit_records", 0);
  const json::Value* pending = value.find("recovery_pending");
  s.recovery_pending =
      pending != nullptr && pending->kind == json::Value::Kind::kBool &&
      pending->boolean;
  s.rss_kb = id_or(value, "rss_kb");
  s.wall_s =
      number_or(value, "wall_s", std::numeric_limits<double>::quiet_NaN());
  if (const json::Value* per_node = value.find("per_node");
      per_node != nullptr && per_node->is_array()) {
    for (const json::Value& entry : per_node->array) {
      TelemetrySample::NodeError e;
      e.node = id_or(entry, "node");
      e.err_us = number_or(entry, "err_us", 0.0);
      const json::Value* synced = entry.find("synced");
      e.synced = synced != nullptr &&
                 synced->kind == json::Value::Kind::kBool && synced->boolean;
      s.node_errors.push_back(e);
    }
  }
  return s;
}

std::int64_t current_rss_kb() {
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  long long total = 0;
  long long resident = 0;
  if (!(statm >> total >> resident)) return -1;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return -1;
  return static_cast<std::int64_t>(resident) * (page / 1024);
#else
  return -1;
#endif
}

bool JsonlSink::open(const std::string& path, std::string* error) {
  os_.open(path, std::ios::out | std::ios::trunc);
  if (!os_) {
    failed_ = true;
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  failed_ = false;
  return true;
}

void JsonlSink::write_line(std::string_view line) {
  if (!os_.is_open()) return;
  // One streambuf write for body + newline, then a flush: the kernel sees
  // whole lines only, so even SIGKILL cannot tear the file mid-line.
  os_.write(line.data(), static_cast<std::streamsize>(line.size()));
  os_.put('\n');
  os_.flush();
  if (!os_) failed_ = true;
  ++lines_;
}

void JsonlSink::close() {
  if (!os_.is_open()) return;
  os_.flush();
  os_.close();
}

TelemetrySampler::TelemetrySampler(const Options& options, EmitFn emit)
    : opt_(options),
      emit_(std::move(emit)),
      next_s_(options.interval_s),
      wall_start_us_(options.process_stats
                         ? std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch())
                               .count()
                         : 0) {}

void TelemetrySampler::emit(double now_s, TelemetrySample sample,
                            const TelemetryCumulative& totals) {
  sample.t_s = now_s;
  sample.source = opt_.source;
  sample.beacons_tx = delta(totals.beacons_tx, prev_.beacons_tx);
  sample.beacons_rx = delta(totals.beacons_rx, prev_.beacons_rx);
  sample.adjustments = delta(totals.adjustments, prev_.adjustments);
  sample.coarse_steps = delta(totals.coarse_steps, prev_.coarse_steps);
  sample.rejects = delta(totals.rejects, prev_.rejects);
  sample.elections = delta(totals.elections, prev_.elections);
  sample.events = delta(totals.events, prev_.events);
  prev_ = totals;
  if (opt_.process_stats) {
    sample.rss_kb = current_rss_kb();
    const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    sample.wall_s = static_cast<double>(now_us - wall_start_us_) * 1e-6;
  }
  // Catch up past skipped intervals (a stalled reactor, a coarse sampling
  // tick) without emitting a burst of stale samples.
  while (next_s_ <= now_s) next_s_ += opt_.interval_s;
  ++emitted_;
  if (emit_) emit_(sample);
}

}  // namespace sstsp::obs
