// Pre-resolved metric handles for the simulation hot paths.
//
// One Instruments object per Network, shared by every station, the channel
// and the simulator — the same sharing pattern as trace::EventTrace.  It
// resolves every handle out of the Registry once at construction, so the
// per-event cost is an increment through a pointer; components hold an
// `Instruments*` that is nullptr when metrics collection is off.
//
// Metric name -> paper quantity mapping lives in DESIGN.md ("Observability").
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "trace/event_trace.h"

namespace sstsp::obs {

class Instruments {
 public:
  explicit Instruments(Registry& registry);

  /// Station-side protocol event (mirrors Station::trace_event): bumps the
  /// per-kind counter and feeds the kind-specific histograms.
  void on_protocol_event(trace::EventKind kind, double value_us) {
    event_counters_[static_cast<std::size_t>(kind)]->inc();
    switch (kind) {
      case trace::EventKind::kAdjustment:
        adjustment_rate_ppm_->record(value_us);  // (k-1) in ppm
        break;
      case trace::EventKind::kCoarseStep:
        coarse_step_us_->record(value_us);
        break;
      case trace::EventKind::kRejectGuard:
      case trace::EventKind::kRejectInterval:
        reject_offset_us_->record(value_us);
        break;
      default:
        break;
    }
  }

  /// Channel: a frame reached a receiver; latency is tx start -> delivered.
  void on_delivery(double latency_us) {
    delivery_latency_us_->record(latency_us);
  }

  /// Simulator: queue depth observed when dispatching an event.
  void on_dispatch(std::size_t queue_depth) {
    queue_depth_->record(static_cast<double>(queue_depth));
  }

  /// Sampler: network-wide max pairwise clock difference at a sample tick.
  void on_max_diff_sample(double max_diff_us) {
    max_diff_us_->record(max_diff_us);
  }

  /// Sampler: one node's |deviation| from the network mean at a sample
  /// tick (the per-node synchronization error behind Fig. 2).
  void on_node_error_sample(double abs_error_us) {
    node_error_us_->record(abs_error_us);
  }

  /// Registers the per-verdict clock-discipline counters
  /// (discipline.<name>.<verdict>; they flow into the metrics JSON and the
  /// Prometheus exposition unmodified).  Called by the runners only when a
  /// non-default discipline is selected: the default path must not grow
  /// registry entries, or seeded run JSON would stop being byte-identical
  /// (the §14 bit-compatibility contract).
  void enable_discipline(std::string_view discipline_name,
                         const std::vector<std::string>& verdict_names);

  /// Core: one discipline verdict was booked.  No-op (one branch) unless
  /// enable_discipline ran.
  void on_discipline_verdict(std::size_t verdict_index) {
    if (verdict_index < discipline_counters_.size() &&
        discipline_counters_[verdict_index] != nullptr) {
      discipline_counters_[verdict_index]->inc();
    }
  }

 private:
  Registry* registry_;
  std::array<Counter*, trace::kEventKindCount> event_counters_{};
  std::vector<Counter*> discipline_counters_{};
  Histogram* adjustment_rate_ppm_;
  Histogram* coarse_step_us_;
  Histogram* reject_offset_us_;
  Histogram* delivery_latency_us_;
  Histogram* queue_depth_;
  Histogram* max_diff_us_;
  Histogram* node_error_us_;
};

}  // namespace sstsp::obs
