#include "obs/invariants.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace sstsp::obs {

std::string_view to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kClockContinuity:
      return "clock-continuity";
    case InvariantKind::kLemma1Divergence:
      return "lemma1-divergence";
    case InvariantKind::kLemma1ConvergenceTimeout:
      return "lemma1-convergence-timeout";
    case InvariantKind::kKeyDisclosure:
      return "key-disclosure";
    case InvariantKind::kChainRegression:
      return "chain-regression";
    case InvariantKind::kGuardViolation:
      return "guard-violation";
    case InvariantKind::kReferenceTakeover:
      return "reference-takeover";
    case InvariantKind::kReferenceSchedule:
      return "reference-schedule";
    case InvariantKind::kTimestampIntegrity:
      return "timestamp-integrity";
    case InvariantKind::kReferenceUniqueness:
      return "reference-uniqueness";
    case InvariantKind::kNodeFailure:
      return "node-failure";
    case InvariantKind::kClusterDivergence:
      return "cluster-divergence";
    case InvariantKind::kClusterConvergenceTimeout:
      return "cluster-convergence-timeout";
    case InvariantKind::kInvariantKindCount:
      break;
  }
  return "?";
}

std::string_view to_string(Severity severity) {
  return severity == Severity::kCritical ? "critical" : "warning";
}

std::string_view paper_reference(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kClockContinuity:
      return "eq. (2)";
    case InvariantKind::kLemma1Divergence:
    case InvariantKind::kLemma1ConvergenceTimeout:
      return "Lemma 1";
    case InvariantKind::kKeyDisclosure:
      return "µTESLA security condition, §3.3 check 1";
    case InvariantKind::kChainRegression:
      return "§3.2 one-way chain";
    case InvariantKind::kGuardViolation:
      return "§3.3 check 4 (guard time, eq. 5)";
    case InvariantKind::kReferenceTakeover:
      return "§3.3 contention election";
    case InvariantKind::kReferenceSchedule:
      return "§3.3 (reference emits at T^j with no delay)";
    case InvariantKind::kTimestampIntegrity:
      return "§3.3 (B carries the sender's adjusted clock)";
    case InvariantKind::kReferenceUniqueness:
      return "§3.1 (single reference per partition)";
    case InvariantKind::kNodeFailure:
      return "§5 resilience (node failed without a planned fault)";
    case InvariantKind::kClusterDivergence:
    case InvariantKind::kClusterConvergenceTimeout:
      return "cross-cluster Lemma-1 analogue (DESIGN.md §13)";
    case InvariantKind::kInvariantKindCount:
      break;
  }
  return "?";
}

std::size_t AuditReport::critical_count() const {
  std::size_t n = 0;
  for (const AuditRecord& r : records) {
    if (r.severity == Severity::kCritical) ++n;
  }
  return n;
}

std::size_t AuditReport::warning_count() const {
  return records.size() - critical_count();
}

void append_json(json::Writer& w, const AuditRecord& r) {
  w.begin_object();
  w.kv("kind", to_string(r.kind));
  w.kv("severity", to_string(r.severity));
  w.kv("paper_ref", paper_reference(r.kind));
  if (r.node != mac::kNoNode) {
    w.kv("node", static_cast<std::uint64_t>(r.node));
  } else {
    w.kv_null("node");  // network-wide invariant (Lemma 1)
  }
  if (r.peer != mac::kNoNode) {
    w.kv("peer", static_cast<std::uint64_t>(r.peer));
  } else {
    w.kv_null("peer");
  }
  w.kv("count", r.count);
  w.kv("first_t_s", r.first_t_s);
  w.kv("last_t_s", r.last_t_s);
  w.kv("worst_value_us", r.worst_value_us);
  w.kv("limit_us", r.limit_us);
  w.kv("detail", r.detail);
  w.end_object();
}

void AuditReport::append_json(json::Writer& w) const {
  w.begin_object();
  w.key("records").begin_array();
  for (const AuditRecord& r : records) {
    obs::append_json(w, r);
  }
  w.end_array();
  w.kv("dropped_records", dropped_records);
  w.kv("critical", static_cast<std::uint64_t>(critical_count()));
  w.kv("warnings", static_cast<std::uint64_t>(warning_count()));
  w.end_object();
}

void InvariantMonitor::violate(InvariantKind kind, Severity severity,
                               mac::NodeId node, mac::NodeId peer,
                               sim::SimTime now, double value_us,
                               double limit_us, const std::string& detail) {
  ++total_;
  const Key key{kind, severity, node, peer};
  auto it = records_.find(key);
  const bool is_new = it == records_.end();
  if (is_new) {
    if (records_.size() >= cfg_.max_records) {
      ++dropped_;
      return;
    }
    AuditRecord rec;
    rec.kind = kind;
    rec.severity = severity;
    rec.node = node;
    rec.peer = peer;
    rec.first_t_s = now.to_sec();
    rec.worst_value_us = value_us;
    rec.limit_us = limit_us;
    rec.detail = detail;
    it = records_.emplace(key, std::move(rec)).first;
  }
  AuditRecord& rec = it->second;
  ++rec.count;
  rec.last_t_s = now.to_sec();
  if (std::fabs(value_us) > std::fabs(rec.worst_value_us)) {
    rec.worst_value_us = value_us;
  }
  if (is_new && on_new_record_) on_new_record_(now, rec);
}

void InvariantMonitor::on_event(const trace::TraceEvent& event) {
  switch (event.kind) {
    case trace::EventKind::kBeaconTx: {
      // Lemma-1 flow liveness: a beacon arrived on schedule somewhere.
      if (last_beacon_ == sim::SimTime::never() ||
          (event.time.to_sec() - last_beacon_.to_sec()) * 1e6 >
              static_cast<double>(cfg_.flow_gap_bps) * cfg_.bp_us) {
        flow_start_ = event.time;  // (re)start the convergence budget
      }
      last_beacon_ = event.time;
      break;
    }
    case trace::EventKind::kElectionWon:
    case trace::EventKind::kDemotion:
      last_role_event_ = event.time;
      break;
    case trace::EventKind::kRejectGuard:
      if (!cfg_.sstsp_checks) break;
      violate(InvariantKind::kGuardViolation, Severity::kWarning, event.node,
              event.peer, event.time, event.value_us, 0.0,
              "beacon timestamp outside the guard window (offset " +
                  std::to_string(event.value_us) + " us); rejected");
      break;
    case trace::EventKind::kRejectInterval:
      if (!cfg_.sstsp_checks) break;
      violate(InvariantKind::kKeyDisclosure, Severity::kWarning, event.node,
              event.peer, event.time, event.value_us, cfg_.interval_slack_us,
              "beacon claimed an interval whose key may already be "
              "disclosed (replay/delay evidence); rejected");
      break;
    default:
      break;
  }
}

void InvariantMonitor::on_clock_adjustment(mac::NodeId node, sim::SimTime now,
                                           double before_us, double after_us,
                                           double new_k, bool coarse) {
  if (!cfg_.sstsp_checks) return;
  if (!coarse) {
    const double leap = after_us - before_us;
    if (std::fabs(leap) > cfg_.continuity_tolerance_us) {
      std::ostringstream detail;
      detail << "fine-phase re-solve leaped the adjusted clock by " << leap
             << " us at the switch instant (eq. 2 requires continuity)";
      violate(InvariantKind::kClockContinuity, Severity::kCritical, node,
              mac::kNoNode, now, leap, cfg_.continuity_tolerance_us,
              detail.str());
    }
  }
  // Slope sanity in both phases: outside [k_min, k_max] the clock may stall
  // or run away (the solver is supposed to clamp, coarse steps to keep 1.0).
  if (new_k < cfg_.k_min || new_k > cfg_.k_max) {
    std::ostringstream detail;
    detail << "adjusted-clock slope k = " << new_k << " escaped ["
           << cfg_.k_min << ", " << cfg_.k_max << "]";
    violate(InvariantKind::kClockContinuity, Severity::kCritical, node,
            mac::kNoNode, now, (new_k - 1.0) * 1e6, (cfg_.k_max - 1.0) * 1e6,
            detail.str());
  }
}

void InvariantMonitor::on_beacon_tx(mac::NodeId node, std::int64_t j,
                                    double ts_us, double clock_us,
                                    bool as_reference, sim::SimTime now) {
  if (!cfg_.sstsp_checks) return;
  // Timestamp integrity: the stamped value must be the sender's own
  // adjusted reading at tx start (floor() rounding aside).  An attacker
  // stamping a dragged virtual clock violates this continuously even
  // though every receiver-side check passes.
  const double skew = ts_us - clock_us;
  if (std::fabs(skew) > cfg_.timestamp_tolerance_us) {
    std::ostringstream detail;
    detail << "beacon for interval " << j << " stamped " << skew
           << " us away from the sender's adjusted clock";
    violate(InvariantKind::kTimestampIntegrity, Severity::kWarning, node,
            mac::kNoNode, now, skew, cfg_.timestamp_tolerance_us,
            detail.str());
  }

  if (!as_reference) return;

  // Schedule: a confirmed reference emits at T^j on its own adjusted clock
  // with no random delay (it owns slot 0).  Early emission is the takeover
  // signature; late emission means the role logic mis-scheduled.  In
  // cluster mode the sender's own cluster timetable (phase shift) applies,
  // and lateness up to the interval slack is legitimate CSMA deferral —
  // another cluster's drifting schedule can occupy the slot.
  const double off_schedule = clock_us - emission_time(j, node);
  const double late_allowance = cfg_.cluster_max_depth > 0
                                    ? cfg_.interval_slack_us
                                    : cfg_.timestamp_tolerance_us;
  if (off_schedule < -cfg_.timestamp_tolerance_us ||
      off_schedule > late_allowance) {
    std::ostringstream detail;
    detail << "confirmed reference emitted interval " << j << " beacon "
           << off_schedule << " us off its nominal T^j";
    violate(InvariantKind::kReferenceSchedule, Severity::kWarning, node,
            mac::kNoNode, now, off_schedule,
            off_schedule < 0.0 ? cfg_.timestamp_tolerance_us : late_allowance,
            detail.str());
  }

  // Uniqueness: at most one confirmed reference emission per interval —
  // per cluster, since each broadcast domain runs its own election.
  // Suspended during planned disturbance windows: a partition legitimately
  // has one reference per side (§3.1), and the post-heal RULE R round is
  // covered by the window's holdoff extension.
  RefSeen& seen = last_ref_[domain_of(node).cluster];
  if (seen.interval == j && seen.emitter != node && !disturbed(now)) {
    std::ostringstream detail;
    detail << "two confirmed references (" << seen.emitter << " and " << node
           << ") emitted in interval " << j << " of cluster "
           << domain_of(node).cluster;
    violate(InvariantKind::kReferenceUniqueness, Severity::kWarning, node,
            seen.emitter, now, 0.0, 0.0, detail.str());
  }
  if (j >= seen.interval) {
    seen.interval = j;
    seen.emitter = node;
  }
}

void InvariantMonitor::on_key_accepted(mac::NodeId node, mac::NodeId sender,
                                       std::int64_t key_index, double local_us,
                                       sim::SimTime now) {
  if (!cfg_.sstsp_checks) return;
  // µTESLA security condition, re-derived independently of the pipeline:
  // key K_{key_index} is disclosed inside the beacon of interval
  // key_index + 1, so accepting it is only safe while the local clock is
  // still inside that interval (± slack).  An acceptance outside the
  // window means the receiver-side check is broken — critical.
  const double center = emission_time(key_index + 1, sender);
  const double half = cfg_.bp_us / 2.0;
  const double lo = center - half - cfg_.interval_slack_us;
  const double hi = center + half + cfg_.interval_slack_us;
  if (local_us < lo || local_us > hi) {
    const double excess = local_us > hi ? local_us - hi : local_us - lo;
    std::ostringstream detail;
    detail << "key for interval " << key_index
           << " accepted with the local clock " << excess
           << " us outside its disclosure window";
    violate(InvariantKind::kKeyDisclosure, Severity::kCritical, node, sender,
            now, excess, cfg_.interval_slack_us, detail.str());
  }

  // Chain monotonicity: accepted indices from one sender never regress.
  // Re-accepting the *same* index is legitimate µTESLA — a disclosed key
  // is public, and a gateway's member beacon and bridge announcement of
  // one interval both carry K_{j-1} (as do duplicated frames under the
  // fault layer's dup plans); only going backwards breaks the one-way
  // chain property.
  auto [it, inserted] =
      chain_tip_.try_emplace(std::make_pair(node, sender), key_index);
  if (!inserted) {
    if (key_index < it->second) {
      std::ostringstream detail;
      detail << "accepted chain index " << key_index
             << " after already accepting " << it->second
             << " from the same sender";
      violate(InvariantKind::kChainRegression, Severity::kCritical, node,
              sender, now,
              static_cast<double>(it->second - key_index) * cfg_.bp_us,
              0.0, detail.str());
    } else {
      it->second = key_index;
    }
  }
}

void InvariantMonitor::on_role_change(mac::NodeId node, bool is_reference,
                                      bool via_election, sim::SimTime now) {
  last_role_event_ = now;
  if (!cfg_.sstsp_checks) return;
  if (is_reference && !via_election) {
    violate(InvariantKind::kReferenceTakeover, Severity::kWarning, node,
            mac::kNoNode, now, 0.0, 0.0,
            "node assumed the reference role without winning a contention "
            "election");
  }
}

void InvariantMonitor::on_max_diff_sample(sim::SimTime now,
                                          double max_diff_us) {
  if (!cfg_.sstsp_checks) return;
  const double now_s = now.to_sec();

  const bool flowing =
      last_beacon_ != sim::SimTime::never() &&
      (now_s - last_beacon_.to_sec()) * 1e6 <
          static_cast<double>(cfg_.flow_gap_bps) * cfg_.bp_us;
  const bool role_quiet =
      last_role_event_ == sim::SimTime::never() ||
      (now_s - last_role_event_.to_sec()) * 1e6 >
          static_cast<double>(cfg_.quiet_holdoff_bps) * cfg_.bp_us;

  if (max_diff_us <= cfg_.converged_threshold_us) {
    // In cluster mode the network-wide error rides on the gateway tau
    // trackers, whose first fits overshoot before enough samples arrive:
    // require a sustained in-bound run before arming the divergence check
    // so the warm-up hump is charged to the convergence budget instead.
    if (cfg_.cluster_max_depth <= 0 || ++inbound_streak_ >= 10) {
      converged_ = true;
    }
    return;
  }
  inbound_streak_ = 0;

  // Planned disturbance (injected partition / reference crash): the error
  // legitimately grows until the heal; Lemma 1's clock restarts afterwards.
  if (disturbed(now)) {
    converged_ = false;
    flow_start_ = now;  // restart the convergence budget at the window edge
    return;
  }

  if (!converged_) {
    // Convergence timeout: with sustained beacon flow, Lemma 1 contracts
    // the initial offset by (m-1)/m per beacon — the budget is generous.
    if (flowing && flow_start_ != sim::SimTime::never() &&
        (now_s - flow_start_.to_sec()) * 1e6 >
            static_cast<double>(cfg_.convergence_budget_bps) * cfg_.bp_us) {
      std::ostringstream detail;
      detail << "max sync error still " << max_diff_us << " us after "
             << cfg_.convergence_budget_bps
             << " BPs of sustained beacon flow";
      violate(InvariantKind::kLemma1ConvergenceTimeout, Severity::kCritical,
              mac::kNoNode, mac::kNoNode, now, max_diff_us,
              cfg_.converged_threshold_us, detail.str());
    }
    return;
  }

  // Divergence: once converged, quiet-window samples (no recent role churn,
  // beacons flowing) must stay bounded — Lemma 1's steady state.
  if (flowing && role_quiet && max_diff_us > cfg_.diverge_threshold_us) {
    std::ostringstream detail;
    detail << "max sync error grew to " << max_diff_us
           << " us in a quiet window (reference live, no role churn)";
    violate(InvariantKind::kLemma1Divergence, Severity::kCritical,
            mac::kNoNode, mac::kNoNode, now, max_diff_us,
            cfg_.diverge_threshold_us, detail.str());
  }
}

void InvariantMonitor::on_cluster_spread_sample(sim::SimTime now,
                                                double inter_cluster_us) {
  if (!cfg_.sstsp_checks || cfg_.cluster_max_depth <= 0) return;
  const double now_s = now.to_sec();
  // Cross-cluster Lemma-1 analogue: each gateway hop adds one bounded
  // translation error, so the spread of per-cluster means is bounded by
  // hop_bound * depth once all bridges are live.
  const double bound = cfg_.cluster_hop_bound_us *
                       static_cast<double>(cfg_.cluster_max_depth);

  const bool flowing =
      last_beacon_ != sim::SimTime::never() &&
      (now_s - last_beacon_.to_sec()) * 1e6 <
          static_cast<double>(cfg_.flow_gap_bps) * cfg_.bp_us;
  const bool role_quiet =
      last_role_event_ == sim::SimTime::never() ||
      (now_s - last_role_event_.to_sec()) * 1e6 >
          static_cast<double>(cfg_.quiet_holdoff_bps) * cfg_.bp_us;

  if (inter_cluster_us <= bound) {
    if (++cluster_inbound_streak_ >= 10) cluster_converged_ = true;
    return;
  }
  cluster_inbound_streak_ = 0;
  if (disturbed(now)) {
    // A gateway crash/partition legitimately detaches clusters; bridging
    // restarts the contraction after the heal.
    cluster_converged_ = false;
    return;
  }
  if (!cluster_converged_) {
    // Convergence budget: per-cluster Lemma 1 plus one announcement round
    // per gateway hop; the intra-cluster budget scaled by the depth chain
    // is generous.
    const double budget_us =
        static_cast<double>(cfg_.convergence_budget_bps *
                            (1 + cfg_.cluster_max_depth)) *
        cfg_.bp_us;
    if (flowing && flow_start_ != sim::SimTime::never() &&
        (now_s - flow_start_.to_sec()) * 1e6 > budget_us) {
      std::ostringstream detail;
      detail << "inter-cluster max offset still " << inter_cluster_us
             << " us (bound " << bound << " us at depth "
             << cfg_.cluster_max_depth << ") after the convergence budget";
      violate(InvariantKind::kClusterConvergenceTimeout, Severity::kCritical,
              mac::kNoNode, mac::kNoNode, now, inter_cluster_us, bound,
              detail.str());
    }
    return;
  }
  if (flowing && role_quiet && inter_cluster_us > 2.0 * bound) {
    std::ostringstream detail;
    detail << "inter-cluster max offset grew to " << inter_cluster_us
           << " us in a quiet window (bound " << bound << " us, depth "
           << cfg_.cluster_max_depth << ")";
    violate(InvariantKind::kClusterDivergence, Severity::kCritical,
            mac::kNoNode, mac::kNoNode, now, inter_cluster_us, 2.0 * bound,
            detail.str());
  }
}

void InvariantMonitor::add_disturbance(sim::SimTime start, sim::SimTime end) {
  disturbances_.emplace_back(start, end);
}

bool InvariantMonitor::disturbed(sim::SimTime now) const {
  const double holdoff_us =
      static_cast<double>(cfg_.quiet_holdoff_bps) * cfg_.bp_us;
  for (const auto& [start, end] : disturbances_) {
    const sim::SimTime extended =
        (end == sim::SimTime::never())
            ? end
            : end + sim::SimTime::from_us_double(holdoff_us);
    if (now >= start && now <= extended) return true;
  }
  return false;
}

AuditReport InvariantMonitor::report() const {
  AuditReport out;
  out.records.reserve(records_.size());
  for (const auto& [key, rec] : records_) out.records.push_back(rec);
  out.dropped_records = dropped_;
  return out;
}

}  // namespace sstsp::obs
