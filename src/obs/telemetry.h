// Streaming telemetry: periodic in-run samples of the quantities the paper
// plots over time — max/mean offset error (Lemma 1's |∆T| bound), the beacon
// verify funnel (§4 pipeline), recovery state and engine load — appended as
// a stable-schema JSONL time-series while the run is still going.
//
// Layering:
//   * TelemetrySample   — plain data; one JSONL line per sample, schema
//     version kTelemetrySchemaVersion (fields documented in DESIGN.md §10).
//   * TelemetrySampler  — interval gate + counter delta logic.  The host
//     (run::Network, net::Swarm, net::NodeRuntime) owns the sampling tick:
//     virtual-time in the simulator (piggybacked on the existing clock-
//     spread sampling event so telemetry adds NO events and leaves seeded
//     runs bit-identical), reactor-paced in the live stack.  The sampler
//     only decides *when* a tick becomes a sample and turns cumulative
//     counters into per-interval rates.
//   * JsonlSink         — line-buffered file sink: every line is written
//     and flushed atomically with its trailing newline, so a crashed or
//     SIGKILLed process never leaves a torn final line for sstsp_tracetool
//     to choke on.
//
// Determinism contract: samples embed virtual time and protocol counters
// only; process stats (RSS, wall clock) are opt-in and used only by the
// wall-paced live runners, keeping simulator telemetry bit-reproducible.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sstsp::obs {

namespace json {
struct Value;
class Writer;
}  // namespace json

/// Bump when a field is added/renamed; emitted as "v" on every line so
/// sstsp_tracetool can refuse samples it does not understand.
inline constexpr int kTelemetrySchemaVersion = 1;

/// One telemetry sample.  Negative ids and non-finite doubles serialize as
/// JSON null ("not applicable / unknown").
struct TelemetrySample {
  double t_s{0.0};            ///< virtual time of the sample
  std::string source{"sim"};  ///< "sim" | "swarm" (cluster) | "node"
  std::int64_t node{-1};      ///< emitting node; <0 = cluster-wide sample

  // Population (honest nodes only; attackers never count as synced).
  int nodes_total{0};
  int nodes_awake{0};
  int nodes_synced{0};
  std::int64_t reference{-1};  ///< current reference id; <0 = none

  // Offset error across synced nodes at this instant (µs).  max is the
  // worst pairwise difference (the paper's max sync error), mean is the
  // mean |deviation| from the network mean.  NaN when < 2 synced nodes.
  double max_offset_us{std::numeric_limits<double>::quiet_NaN()};
  double mean_offset_us{std::numeric_limits<double>::quiet_NaN()};

  // Beacon funnel over the sample interval (deltas, not cumulative).
  std::uint64_t beacons_tx{0};
  std::uint64_t beacons_rx{0};
  std::uint64_t adjustments{0};
  std::uint64_t coarse_steps{0};
  std::uint64_t rejects{0};  ///< guard + interval + key + MAC rejections
  std::uint64_t elections{0};

  // Engine load.
  std::uint64_t events{0};       ///< simulator events over the interval
  std::uint64_t queue_depth{0};  ///< pending events at the sample instant

  // Health.
  std::uint64_t audit_records{0};  ///< cumulative monitor violations
  bool recovery_pending{false};    ///< an injected fault not yet recovered

  // Process stats — wall-paced live runs only (sim omits them to stay
  // bit-reproducible).  <0 / NaN = omitted.
  std::int64_t rss_kb{-1};
  double wall_s{std::numeric_limits<double>::quiet_NaN()};

  /// Per-node signed deviation from the network mean (µs), attached to
  /// cluster samples of small deployments so the analyzer can draw true
  /// per-node convergence timelines.
  struct NodeError {
    std::int64_t node{-1};
    double err_us{0.0};
    bool synced{false};
  };
  std::vector<NodeError> node_errors;
};

/// Serializes one sample as a single JSONL line (no trailing newline).
[[nodiscard]] std::string telemetry_to_jsonl(const TelemetrySample& sample);

/// Appends the sample object to an enclosing JSON document.
void append_json(json::Writer& w, const TelemetrySample& sample);

/// Parses a {"type":"telemetry",...} object; nullopt when the line is not a
/// telemetry sample or carries an unknown schema version.
[[nodiscard]] std::optional<TelemetrySample> telemetry_from_json(
    const json::Value& value);

/// Current resident set size in KiB, or -1 when unavailable.
[[nodiscard]] std::int64_t current_rss_kb();

/// Line-buffered JSONL sink.  write_line() appends exactly one line (body +
/// '\n') and flushes, so readers — and post-mortem tooling after a crash —
/// only ever see whole lines.  Destruction flushes and closes.
class JsonlSink {
 public:
  JsonlSink() = default;
  ~JsonlSink() { close(); }
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Opens (truncating) `path`; false + *error on failure.
  bool open(const std::string& path, std::string* error);

  /// Writes `line` (which must not contain '\n') plus the newline, then
  /// flushes to the OS.
  void write_line(std::string_view line);

  void close();

  [[nodiscard]] bool is_open() const { return os_.is_open(); }
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ofstream os_;
  bool failed_{false};
  std::uint64_t lines_{0};
};

/// Monotonic protocol totals a host hands to the sampler; the sampler
/// subtracts the previous emission's totals to produce per-interval deltas.
struct TelemetryCumulative {
  std::uint64_t beacons_tx{0};
  std::uint64_t beacons_rx{0};
  std::uint64_t adjustments{0};
  std::uint64_t coarse_steps{0};
  std::uint64_t rejects{0};
  std::uint64_t elections{0};
  std::uint64_t events{0};
};

/// Interval gate + delta computer.  Hosts call due(now) on every sampling
/// tick and, when true, build the gauge part of a sample and hand it to
/// emit() together with the current cumulative totals.
class TelemetrySampler {
 public:
  struct Options {
    double interval_s{1.0};
    std::string source{"sim"};
    /// Attach RSS / wall-clock fields (wall-paced live runs only).
    bool process_stats{false};
  };
  using EmitFn = std::function<void(const TelemetrySample&)>;

  TelemetrySampler(const Options& options, EmitFn emit);

  /// True when the next sample is due at (or before) virtual time now_s.
  /// The first sample is due at one full interval, not at t=0.
  [[nodiscard]] bool due(double now_s) const { return now_s >= next_s_; }

  /// Stamps, deltas, and emits.  `sample` carries the gauge fields (the
  /// funnel fields are ignored and overwritten with deltas of `totals`).
  void emit(double now_s, TelemetrySample sample,
            const TelemetryCumulative& totals);

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
  EmitFn emit_;
  TelemetryCumulative prev_{};
  double next_s_;
  std::int64_t wall_start_us_{0};  // steady-clock anchor for wall_s
  std::uint64_t emitted_{0};
};

}  // namespace sstsp::obs
