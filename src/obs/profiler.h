// Scoped wall-clock profiler for the simulation hot paths.
//
// The simulator, channel and protocol code open RAII spans tagged with a
// Phase; the profiler attributes *exclusive* time to each phase (opening a
// nested span pauses the enclosing one), so the per-phase breakdown sums to
// the total instrumented time and "event dispatch" does not double-count the
// crypto work done inside a dispatched callback.
//
// Disabled operation is a single null-pointer test per span site: every
// instrumented component holds a Profiler* that is nullptr unless profiling
// was requested, and Span's constructor/destructor do nothing through a
// null pointer.  That is the whole "< 2 % overhead when disabled" story.
//
// Phases are a closed enum rather than registry strings: span open/close is
// two clock reads plus array arithmetic, with no lookups or allocation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace sstsp::obs {

namespace json {
class Writer;
}  // namespace json

enum class Phase : std::uint8_t {
  kDispatch,         ///< event-queue callback execution (outermost)
  kChannelDelivery,  ///< channel interference/delivery fan-out
  kCryptoVerify,     ///< µTESLA key/MAC verification pipeline
  kFilterEval,       ///< outlier filtering + adjustment solving
  kCount
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] std::string_view phase_name(Phase phase);

/// current_phase() sentinel: no span is open.
inline constexpr std::uint8_t kPhaseNone = 255;

struct PhaseStats {
  std::uint64_t exclusive_ns{0};
  std::uint64_t spans{0};
};

struct ProfileSnapshot {
  std::array<PhaseStats, kPhaseCount> phases{};
  std::uint64_t total_ns{0};       ///< sum of exclusive times
  std::uint64_t events{0};         ///< simulator events dispatched
  double wall_seconds{0.0};        ///< end-to-end run wall time

  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }

  /// Per-phase breakdown table + events/sec line.
  void print(std::ostream& os) const;
  /// {"events": n, "wall_seconds": s, "events_per_second": r,
  ///  "phases": {name: {exclusive_ns, spans, fraction}}}.
  void write_json(std::ostream& os) const;
  /// Same object appended as one value of an enclosing document.
  void append_json(json::Writer& w) const;
};

class Profiler {
 public:
  /// `clock_ns` overrides the time source (tests inject a fake clock);
  /// default is std::chrono::steady_clock.
  explicit Profiler(std::function<std::uint64_t()> clock_ns = {});

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void begin(Phase phase);
  void end();

  /// Span-edge observer for the timeline export: called from begin()/end()
  /// with the phase and the clock value the span edge was charged at.  Null
  /// by default — the cost of not having one is a single branch per edge.
  using SpanSink =
      std::function<void(Phase phase, bool is_begin, std::uint64_t now_ns)>;
  void set_span_sink(SpanSink sink) { span_sink_ = std::move(sink); }

  /// Lock-free view of the innermost open phase (kPhaseNone when the stack
  /// is empty).  Safe to read from a SIGPROF handler — this is the hook the
  /// PhaseSampler's live mode samples through.
  [[nodiscard]] std::uint8_t current_phase() const {
    return current_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const PhaseStats& stats(Phase phase) const {
    return phases_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t total_ns() const;

  /// Plain-data copy; `events`/`wall_seconds` are the caller's (the
  /// profiler measures only instrumented spans).
  [[nodiscard]] ProfileSnapshot snapshot(std::uint64_t events,
                                         double wall_seconds) const;

  void reset();

 private:
  struct Open {
    Phase phase;
    std::uint64_t resumed_at;
  };

  std::function<std::uint64_t()> clock_ns_;
  std::array<PhaseStats, kPhaseCount> phases_{};
  std::vector<Open> stack_;
  SpanSink span_sink_;
  std::atomic<std::uint8_t> current_{kPhaseNone};
};

/// RAII span; a null profiler makes construction/destruction free.
class Span {
 public:
  Span(Profiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->begin(phase);
  }
  ~Span() {
    if (profiler_ != nullptr) profiler_->end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace sstsp::obs
