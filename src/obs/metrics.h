// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// Design constraints, in order:
//   * Hot-path recording must be a couple of arithmetic ops — consumers
//     resolve a Counter*/Histogram* handle once (Registry::counter(...))
//     and record through it; no string lookups on the data path.
//   * A Registry is written from one thread, like everything per-Simulator
//     in this library.  Parallel sweeps keep one Registry per task and
//     combine them afterwards with merge_from() (histograms merge exactly:
//     bucketed representation is closed under addition).  Counters are
//     additionally safe to *read* from other threads (atomic, relaxed) so
//     live telemetry can snapshot them mid-run; gauge/histogram reads stay
//     owner-thread-only.
//   * Snapshots are plain data (name -> value / quantile summary) so run
//     results can carry them across threads and serialize to JSON without
//     touching the live registry.
//
// Histogram: 64 logarithmic buckets over the magnitude of the recorded
// value, base 2, covering [2^-16, 2^47] (~1.5e-5 .. 1.4e14) — wide enough
// for microsecond-scale clock errors and nanosecond-scale spans alike.
// Negative values are folded into their magnitude for bucketing (the sign
// carries no information for the error/latency distributions we track; the
// exact min/max/sum keep it).  Quantiles interpolate within the bucket, so
// the relative error is bounded by the bucket width (a factor of 2); tests
// assert within that.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sstsp::obs {

/// Counters are lock-free atomics (relaxed ordering: each counter is an
/// independent monotonic total, no cross-counter ordering is promised) so
/// the live stack's telemetry/watch threads can read them while the reactor
/// thread increments.  Gauges and histograms stay plain data — they are
/// only ever touched from their owning thread; cross-thread consumers go
/// through samples built on the reactor thread.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count{0};
  double sum{0.0};
  double min{0.0};
  double max{0.0};
  double mean{0.0};
  double p50{0.0};
  double p90{0.0};
  double p99{0.0};
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// p-quantile (p in [0, 1]) of the recorded magnitudes, interpolated
  /// within the log bucket; 0 when empty.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Exact under the bucketed representation.
  void merge_from(const Histogram& other);

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  void add_sum(double v);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_{0};
  /// Running sum as a double-double (sum_ + sum_c_, normalized so sum_
  /// carries the head): ~106 bits of accumulation keep the reported sum
  /// insensitive to how samples were grouped before merge_from — required
  /// by the sharded kernel's contract that a run's metrics document is
  /// byte-identical for any shard count.
  double sum_{0.0};
  double sum_c_{0.0};
  double min_{0.0};
  double max_{0.0};
};

namespace json {
class Writer;
}  // namespace json

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99}}}.
  void write_json(std::ostream& os) const;
  /// Same object appended as one value of an enclosing document.
  void append_json(json::Writer& w) const;
};

/// Named metric directory.  Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (node-based map
/// storage), so consumers resolve them once at wiring time.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  [[nodiscard]] Gauge& gauge(std::string_view name) {
    return gauges_[std::string(name)];
  }
  [[nodiscard]] Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  /// Adds every metric of `other` into this registry (same-named counters
  /// add, gauges take the other's value, histograms merge bucket-wise).
  void merge_from(const Registry& other);

  /// Sorted-by-name plain-data copy of the current values; zero-valued
  /// counters and empty histograms are included (they document what the
  /// run *could* have recorded).
  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  // std::map: deterministic iteration order and stable node addresses.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace sstsp::obs
