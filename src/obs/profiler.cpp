#include "obs/profiler.h"

#include <chrono>
#include <iomanip>
#include <ostream>

#include "obs/json.h"

namespace sstsp::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kDispatch:
      return "event-dispatch";
    case Phase::kChannelDelivery:
      return "channel-delivery";
    case Phase::kCryptoVerify:
      return "crypto-verify";
    case Phase::kFilterEval:
      return "filter-eval";
    case Phase::kCount:
      break;
  }
  return "?";
}

Profiler::Profiler(std::function<std::uint64_t()> clock_ns)
    : clock_ns_(clock_ns ? std::move(clock_ns) : steady_now_ns) {
  stack_.reserve(8);
}

void Profiler::begin(Phase phase) {
  const std::uint64_t now = clock_ns_();
  if (!stack_.empty()) {
    // Pause the enclosing span: charge what it accrued so far.
    Open& parent = stack_.back();
    phases_[static_cast<std::size_t>(parent.phase)].exclusive_ns +=
        now - parent.resumed_at;
  }
  ++phases_[static_cast<std::size_t>(phase)].spans;
  stack_.push_back(Open{phase, now});
  current_.store(static_cast<std::uint8_t>(phase), std::memory_order_relaxed);
  if (span_sink_) span_sink_(phase, true, now);
}

void Profiler::end() {
  if (stack_.empty()) return;  // unbalanced end: ignore rather than corrupt
  const std::uint64_t now = clock_ns_();
  const Open closing = stack_.back();
  stack_.pop_back();
  phases_[static_cast<std::size_t>(closing.phase)].exclusive_ns +=
      now - closing.resumed_at;
  if (!stack_.empty()) stack_.back().resumed_at = now;  // resume parent
  current_.store(stack_.empty()
                     ? kPhaseNone
                     : static_cast<std::uint8_t>(stack_.back().phase),
                 std::memory_order_relaxed);
  if (span_sink_) span_sink_(closing.phase, false, now);
}

std::uint64_t Profiler::total_ns() const {
  std::uint64_t total = 0;
  for (const PhaseStats& p : phases_) total += p.exclusive_ns;
  return total;
}

ProfileSnapshot Profiler::snapshot(std::uint64_t events,
                                   double wall_seconds) const {
  ProfileSnapshot s;
  s.phases = phases_;
  s.total_ns = total_ns();
  s.events = events;
  s.wall_seconds = wall_seconds;
  return s;
}

void Profiler::reset() {
  phases_ = {};
  stack_.clear();
  current_.store(kPhaseNone, std::memory_order_relaxed);
}

void ProfileSnapshot::print(std::ostream& os) const {
  os << "profile: " << events << " events in " << std::fixed
     << std::setprecision(3) << wall_seconds << " s wall ("
     << std::setprecision(0) << events_per_second() << " events/s)\n";
  os << "  " << std::left << std::setw(18) << "phase" << std::right
     << std::setw(12) << "time (ms)" << std::setw(12) << "spans"
     << std::setw(9) << "share" << '\n';
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& p = phases[i];
    const double share =
        total_ns > 0
            ? 100.0 * static_cast<double>(p.exclusive_ns) /
                  static_cast<double>(total_ns)
            : 0.0;
    os << "  " << std::left << std::setw(18)
       << phase_name(static_cast<Phase>(i)) << std::right << std::setw(12)
       << std::setprecision(2)
       << static_cast<double>(p.exclusive_ns) * 1e-6 << std::setw(12)
       << p.spans << std::setw(8) << std::setprecision(1) << share << "%\n";
  }
  os.unsetf(std::ios::fixed);
}

void ProfileSnapshot::write_json(std::ostream& os) const {
  json::Writer w(os);
  append_json(w);
}

void ProfileSnapshot::append_json(json::Writer& w) const {
  w.begin_object();
  w.kv("events", events);
  w.kv("wall_seconds", wall_seconds);
  w.kv("events_per_second", events_per_second());
  w.kv("total_ns", total_ns);
  w.key("phases").begin_object();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseStats& p = phases[i];
    w.key(phase_name(static_cast<Phase>(i))).begin_object();
    w.kv("exclusive_ns", p.exclusive_ns);
    w.kv("spans", p.spans);
    w.kv("fraction", total_ns > 0
                         ? static_cast<double>(p.exclusive_ns) /
                               static_cast<double>(total_ns)
                         : 0.0);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace sstsp::obs
