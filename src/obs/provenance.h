// Build/run provenance: who produced this JSON document.
//
// BENCH_perf.json trajectories and run reports are compared across months
// and machines; a number without its git sha, compiler and host is not
// attributable.  The values are captured at CMake configure time (git sha,
// build type, flags — see src/CMakeLists.txt) and at compile/run time
// (compiler via __VERSION__, host via uname(2)), and appended as a purely
// additive "provenance" object — run-JSON schema_version stays unchanged
// per the additive-fields rule (runner/json_report.cpp).
#pragma once

#include <string>

namespace sstsp::obs {

namespace json {
class Writer;
}  // namespace json

struct Provenance {
  std::string git_sha;     ///< short HEAD sha at configure time ("unknown")
  std::string compiler;    ///< e.g. "g++ 13.2.0" (__VERSION__)
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string flags;       ///< CMAKE_CXX_FLAGS (may be empty)
  std::string host;        ///< uname: sysname/release/machine + nodename
};

/// Process-wide singleton, captured once on first use.
[[nodiscard]] const Provenance& provenance();

/// Appends `"provenance": {...}` — key included — to an open JSON object.
void append_provenance_json(json::Writer& w);

}  // namespace sstsp::obs
