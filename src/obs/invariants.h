// Online protocol invariant monitor.
//
// A passive observer wired into every station (same null-pointer sharing
// pattern as trace::EventTrace / obs::Instruments) that continuously checks
// the guarantees the paper proves or assumes, and turns violations into
// structured audit records:
//
//   clock-continuity     eq. (2): a fine-phase (k, b) re-solve preserves the
//                        adjusted value at the switch instant; only coarse
//                        steps may leap.  Also bounds the slope k.
//   lemma1-*             Lemma 1: with a live reference, the max pairwise
//                        sync error contracts geometrically (ratio
//                        ~ (m-1)/m) and then stays bounded.  Checked as (a)
//                        convergence within a beacon-budget of sustained
//                        beacon flow and (b) no divergence during quiet
//                        windows once converged.
//   key-disclosure       µTESLA security condition (§3.3 check 1): a
//                        disclosed key is only usable while the local clock
//                        is still inside its interval.  Warning records
//                        aggregate the protocol's own rejections (attack
//                        evidence); a key *accepted* outside the window is
//                        critical (broken implementation).
//   chain-regression     µTESLA one-way chain (§3.2): accepted chain
//                        indices from one sender must be monotone.
//   guard-violation      guard-time check (§3.3 check 4) rejections —
//                        attack/fault evidence, aggregated.
//   reference-takeover   a node assumed the reference role without winning
//                        an election (§3.3 contention) — the §5 internal
//                        attacker's signature move.
//   reference-schedule   a confirmed reference must emit at T^j = T0 + j*BP
//                        on its own adjusted clock with no delay (§3.3).
//   timestamp-integrity  the beacon timestamp must equal the sender's
//                        adjusted clock at tx start (§3.3's definition of
//                        B); a dragged/virtual clock violates this even
//                        when every receiver-side check passes.
//   reference-uniqueness one confirmed reference per partition per BP
//                        (§3.1/§3.3); in cluster mode, per *cluster* —
//                        every broadcast domain owns its own election.
//   cluster-*            cross-cluster Lemma-1 analogue (DESIGN.md §13):
//                        with live gateways, the inter-cluster max offset
//                        (spread of per-cluster mean global readings) must
//                        converge below hop_bound x max gateway depth and
//                        stay bounded in quiet windows.
//
// Records carry a severity (warning = evidence of external misbehaviour
// the protocol handled; critical = a protocol invariant was itself broken)
// plus the paper equation/section the invariant comes from, and aggregate
// per (kind, node, peer) so a sustained attack yields one bounded record
// with a count, not an unbounded list.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mac/phy_params.h"
#include "sim/time_types.h"
#include "trace/event_trace.h"

namespace sstsp::obs {

namespace json {
class Writer;
}  // namespace json

enum class InvariantKind : std::uint8_t {
  kClockContinuity,
  kLemma1Divergence,
  kLemma1ConvergenceTimeout,
  kKeyDisclosure,
  kChainRegression,
  kGuardViolation,
  kReferenceTakeover,
  kReferenceSchedule,
  kTimestampIntegrity,
  kReferenceUniqueness,
  kNodeFailure,
  kClusterDivergence,
  kClusterConvergenceTimeout,
  kInvariantKindCount,  // sentinel
};

inline constexpr std::size_t kInvariantKindCount =
    static_cast<std::size_t>(InvariantKind::kInvariantKindCount);

enum class Severity : std::uint8_t { kWarning, kCritical };

[[nodiscard]] std::string_view to_string(InvariantKind kind);
[[nodiscard]] std::string_view to_string(Severity severity);
/// Paper equation / lemma / section the invariant enforces.
[[nodiscard]] std::string_view paper_reference(InvariantKind kind);

/// One aggregated violation class: all occurrences of `kind` recorded by
/// `node` against `peer` (kNoNode when the invariant has no counterparty).
struct AuditRecord {
  InvariantKind kind{InvariantKind::kClockContinuity};
  Severity severity{Severity::kWarning};
  mac::NodeId node{mac::kNoNode};  ///< the node the violation was observed at
  mac::NodeId peer{mac::kNoNode};  ///< offending counterparty, if any
  std::uint64_t count{0};
  double first_t_s{0.0};
  double last_t_s{0.0};
  double worst_value_us{0.0};  ///< most extreme measured quantity
  double limit_us{0.0};        ///< the bound it was checked against
  std::string detail;          ///< first occurrence, human-readable
};

/// Appends one record as a JSON object (the element schema of
/// AuditReport's "records" array; also embedded as the "trigger" of a
/// flight-recorder dump).
void append_json(json::Writer& w, const AuditRecord& record);

/// Snapshot of every audit record of a run (stable JSON schema; see
/// DESIGN.md "Invariant monitor").
struct AuditReport {
  std::vector<AuditRecord> records;
  std::uint64_t dropped_records{0};  ///< distinct classes beyond the cap

  [[nodiscard]] bool clean() const {
    return records.empty() && dropped_records == 0;
  }
  [[nodiscard]] std::size_t critical_count() const;
  [[nodiscard]] std::size_t warning_count() const;

  /// {"records": [...], "dropped_records": N, "critical": N, "warnings": N}
  void append_json(json::Writer& w) const;
};

/// Monitor tuning; defaults match the paper's §5 environment.  Constructed
/// by the scenario runner from the run's SstspConfig.
struct InvariantConfig {
  /// Protocol-specific checks (everything except the generic event
  /// bookkeeping) only make sense for SSTSP runs.
  bool sstsp_checks = true;

  double bp_us = 1e5;  ///< beacon period
  int m = 3;           ///< Lemma 1 contraction parameter
  int l = 1;           ///< missed-beacon tolerance
  double t0_us = 0.0;
  double interval_slack_us = 2000.0;
  double k_min = 0.95;
  double k_max = 1.05;

  /// Continuity: |c_after - c_before| at the re-solve instant.  The solver
  /// is exact up to floating-point cancellation (~1e-7 us at 1000 s).
  double continuity_tolerance_us = 0.5;

  /// Timestamp integrity / reference schedule: floor() rounding of the
  /// stamped value keeps the honest residual under 1 us.
  double timestamp_tolerance_us = 5.0;

  /// Lemma 1: converged once the sampled max error is below the industry
  /// threshold; diverged if a *quiet-window* sample later exceeds 2x it.
  double converged_threshold_us = 25.0;
  double diverge_threshold_us = 50.0;

  /// BPs of sustained beacon flow a cold network gets to converge (Lemma 1
  /// needs ~log(offset/target)/log(m/(m-1)) beacons; 50 is generous).
  int convergence_budget_bps = 50;

  /// Quiet window: divergence is only judged this many BPs after the last
  /// role event (election / demotion / takeover) and only while beacons
  /// keep flowing (gap below flow_gap_bps) — re-elections and reference
  /// silence legitimately grow the error (Lemma 2, guard growth).
  int quiet_holdoff_bps = 10;
  int flow_gap_bps = 4;  ///< > l + confirm_bps: a full re-election round

  /// Cross-cluster Lemma-1 analogue (set by the runner for cluster
  /// scenarios; 0 disables the cluster checks).  The inter-cluster max
  /// offset must converge below hop_bound * max_depth and stay under twice
  /// that in quiet windows.
  int cluster_max_depth = 0;
  double cluster_hop_bound_us = 25.0;

  /// Bound on distinct (kind, severity, node, peer) record classes kept.
  std::size_t max_records = 512;
};

/// Per-node broadcast-domain facts the cluster-aware checks need: which
/// cluster a sender belongs to (reference uniqueness is per cluster) and
/// its schedule phase (T^j = t0 + phase + j*BP for that cluster).
struct NodeDomainInfo {
  int cluster{0};
  double phase_us{0.0};
};

/// The monitor.  All hooks are cheap relative to what triggers them (one
/// map/flag update); when no monitor is attached every call site is a
/// single null-pointer test.
class InvariantMonitor {
 public:
  explicit InvariantMonitor(InvariantConfig config) : cfg_(config) {}

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  [[nodiscard]] const InvariantConfig& config() const { return cfg_; }

  // ---- hooks (called by Station / core::Sstsp / the scenario runner) ----

  /// Every traced protocol event (fans out from Station::trace_event).
  /// Consumes the rejection kinds as aggregated attack-evidence records
  /// and beacon-tx as Lemma-1 flow liveness.
  void on_event(const trace::TraceEvent& event);

  /// A fine-phase (k, b) re-solve or a coarse step: `before_us`/`after_us`
  /// are the adjusted readings at the same hardware instant immediately
  /// before/after the parameter change.
  void on_clock_adjustment(mac::NodeId node, sim::SimTime now,
                           double before_us, double after_us, double new_k,
                           bool coarse);

  /// A beacon left node `node` claiming interval `j`, stamped `ts_us`,
  /// while the sender's adjusted clock read `clock_us`; `as_reference` is
  /// whether the sender held the confirmed reference role.
  void on_beacon_tx(mac::NodeId node, std::int64_t j, double ts_us,
                    double clock_us, bool as_reference, sim::SimTime now);

  /// Receiver `node` accepted sender's disclosed key for interval
  /// `key_index` (= j - 1) while its own adjusted clock read `local_us`.
  void on_key_accepted(mac::NodeId node, mac::NodeId sender,
                       std::int64_t key_index, double local_us,
                       sim::SimTime now);

  /// Role transition.  `via_election` distinguishes the legitimate paths
  /// (contention win, preestablished boot) from a forced takeover.
  void on_role_change(mac::NodeId node, bool is_reference, bool via_election,
                      sim::SimTime now);

  /// Network-wide max pairwise sync error sample (the Fig. 2 series).
  void on_max_diff_sample(sim::SimTime now, double max_diff_us);

  /// Cluster mode: declares each node's cluster and schedule phase so the
  /// reference-uniqueness / schedule / disclosure checks evaluate against
  /// the sender's own domain timetable.  Indexed by node id.
  void set_cluster_topology(std::vector<NodeDomainInfo> nodes) {
    topology_ = std::move(nodes);
  }

  /// Cluster mode: inter-cluster max offset sample (spread of per-cluster
  /// mean global readings) — the cross-cluster Lemma-1 analogue's input.
  /// No-op unless cfg.cluster_max_depth > 0.
  void on_cluster_spread_sample(sim::SimTime now, double inter_cluster_us);

  /// Declares a planned disturbance window [start, end] (an injected
  /// partition or reference crash).  While the window — extended by the
  /// quiet holdoff — is active, Lemma-1 divergence/convergence-timeout and
  /// reference-uniqueness are suspended: a partition legitimately elects a
  /// second reference (§3.1 guarantees one reference *per partition*) and
  /// the error legitimately grows until the heal (Lemma 1 restarts).  All
  /// other invariants keep being enforced, so a strict-clean audit under an
  /// injected fault still certifies the recovery path.
  void add_disturbance(sim::SimTime start, sim::SimTime end);

  /// Observer fired once per *new* record class, at first occurrence (the
  /// record already holds count = 1 and its detail).  Repeat violations
  /// aggregate silently.  Used by the flight recorder to dump retained
  /// history the moment something first goes wrong.
  using NewRecordHook =
      std::function<void(sim::SimTime now, const AuditRecord& record)>;
  void set_on_new_record(NewRecordHook hook) {
    on_new_record_ = std::move(hook);
  }

  // ---- results ---------------------------------------------------------

  [[nodiscard]] AuditReport report() const;
  [[nodiscard]] std::uint64_t total_violations() const { return total_; }

 private:
  struct Key {
    InvariantKind kind;
    Severity severity;
    mac::NodeId node;
    mac::NodeId peer;
    bool operator<(const Key& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (severity != o.severity) return severity < o.severity;
      if (node != o.node) return node < o.node;
      return peer < o.peer;
    }
  };

  void violate(InvariantKind kind, Severity severity, mac::NodeId node,
               mac::NodeId peer, sim::SimTime now, double value_us,
               double limit_us, const std::string& detail);

  [[nodiscard]] bool disturbed(sim::SimTime now) const;

  [[nodiscard]] const NodeDomainInfo& domain_of(mac::NodeId node) const {
    static constexpr NodeDomainInfo kDefault{};
    const auto idx = static_cast<std::size_t>(node);
    return idx < topology_.size() ? topology_[idx] : kDefault;
  }

  /// Nominal emission time of interval j on `sender`'s cluster timetable
  /// (phase 0 — the original single-domain behaviour — without topology).
  [[nodiscard]] double emission_time(std::int64_t j, mac::NodeId sender) const {
    return cfg_.t0_us + domain_of(sender).phase_us +
           static_cast<double>(j) * cfg_.bp_us;
  }

  InvariantConfig cfg_;

  NewRecordHook on_new_record_;

  // Aggregated records (bounded map + overflow counter).
  std::map<Key, AuditRecord> records_;
  std::uint64_t dropped_{0};
  std::uint64_t total_{0};

  // Lemma 1 state machine.
  bool converged_{false};
  /// Consecutive in-bound max-diff samples (cluster mode arms the global
  /// divergence check only after a sustained run; see invariants.cpp).
  int inbound_streak_{0};
  sim::SimTime flow_start_{sim::SimTime::never()};
  sim::SimTime last_beacon_{sim::SimTime::never()};
  sim::SimTime last_role_event_{sim::SimTime::never()};

  // µTESLA chain monotonicity: newest accepted key index per
  // (receiver, sender).
  std::map<std::pair<mac::NodeId, mac::NodeId>, std::int64_t> chain_tip_;

  // Reference-uniqueness: the newest interval a confirmed reference
  // emitted in, and who it was — per cluster, since every broadcast
  // domain runs its own election (single-domain runs all map to cluster 0).
  struct RefSeen {
    std::int64_t interval{INT64_MIN};
    mac::NodeId emitter{mac::kNoNode};
  };
  std::map<int, RefSeen> last_ref_;

  // Cluster topology (empty outside cluster mode) + the cross-cluster
  // Lemma-1 analogue's state.
  std::vector<NodeDomainInfo> topology_;
  bool cluster_converged_{false};
  /// Consecutive in-bound spread samples; the divergence check only arms
  /// after a sustained run so the tau trackers' warm-up hump (the fits
  /// extrapolate wildly off their first one or two samples) is charged to
  /// the convergence budget, not misread as a quiet-window blow-up.
  int cluster_inbound_streak_{0};

  // Planned fault windows (add_disturbance); checked inclusive of the
  // quiet-holdoff extension past each end.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> disturbances_;
};

}  // namespace sstsp::obs
