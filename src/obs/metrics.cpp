#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json.h"

namespace sstsp::obs {

namespace {

// Bucket 0 holds magnitudes in [0, 2^kMinExp); bucket i >= 1 holds
// [2^(kMinExp + i - 1), 2^(kMinExp + i)); the last bucket also absorbs
// everything above its upper bound.
constexpr int kMinExp = -16;

std::size_t bucket_index(double magnitude) {
  if (!(magnitude >= std::ldexp(1.0, kMinExp))) return 0;  // incl. NaN
  int exp = 0;
  (void)std::frexp(magnitude, &exp);  // magnitude = f * 2^exp, f in [0.5, 1)
  const int idx = (exp - 1) - kMinExp + 1;
  return std::min(static_cast<std::size_t>(std::max(idx, 1)),
                  Histogram::kBuckets - 1);
}

double bucket_lower(std::size_t idx) {
  return idx == 0 ? 0.0 : std::ldexp(1.0, kMinExp + static_cast<int>(idx) - 1);
}

double bucket_upper(std::size_t idx) {
  return std::ldexp(1.0, kMinExp + static_cast<int>(idx));
}

}  // namespace

void Histogram::record(double v) {
  const double magnitude = std::fabs(v);
  ++buckets_[bucket_index(magnitude)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  add_sum(v);
}

void Histogram::add_sum(double v) {
  // TwoSum error-free transform: s + e == sum_ + v exactly; folding the
  // old compensation into e and renormalizing keeps sum_ as the head of a
  // double-double accumulator.
  const double s = sum_ + v;
  const double bp = s - sum_;
  double e = (sum_ - (s - bp)) + (v - bp);
  e += sum_c_;
  sum_ = s + e;
  sum_c_ = e - (sum_ - s);
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested order statistic, 1-based.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      const double within =
          (static_cast<double>(target - cumulative) - 0.5) /
          static_cast<double>(buckets_[i]);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      // Cap at the observed magnitude ceiling so p=1.0 never exceeds the
      // true max.
      return std::min(lo + within * (hi - lo),
                      std::max(std::fabs(min_), std::fabs(max_)));
    }
    cumulative += buckets_[i];
  }
  return std::fabs(max_);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  add_sum(other.sum_);
  add_sum(other.sum_c_);
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge_from(h);
  }
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h.snapshot());
  }
  return s;
}

void RegistrySnapshot::write_json(std::ostream& os) const {
  json::Writer w(os);
  append_json(w);
}

void RegistrySnapshot::append_json(json::Writer& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("mean", h.mean);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace sstsp::obs
