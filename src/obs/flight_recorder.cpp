#include "obs/flight_recorder.h"

#include <sstream>

#include "obs/json.h"

namespace sstsp::obs {
namespace {

// Mirrors obs::write_event_jsonl, plus the flight_seq tag that marks the
// line as replayed history rather than part of the live stream.
std::string flight_event_line(const trace::TraceEvent& event,
                              std::uint64_t seq) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.kv("type", "event");
  w.kv("t_s", event.time.to_sec());
  w.kv("node", static_cast<std::uint64_t>(event.node));
  w.kv("kind", to_string(event.kind));
  if (event.peer != mac::kNoNode) {
    w.kv("peer", static_cast<std::uint64_t>(event.peer));
  }
  if (event.trace_id != 0) w.kv("trace_id", event.trace_id);
  w.kv("value_us", event.value_us);
  w.kv("flight_seq", seq);
  w.end_object();
  return os.str();
}

std::string flight_sample_line(const TelemetrySample& sample,
                               std::uint64_t seq) {
  // telemetry_to_jsonl ends with the closing brace; splice the tag in.
  std::string line = telemetry_to_jsonl(sample);
  line.pop_back();  // '}'
  line += ",\"flight_seq\":" + std::to_string(seq) + "}";
  return line;
}

}  // namespace

void FlightRecorder::on_trace_event(const trace::TraceEvent& event) {
  ++events_recorded_;
  if (cfg_.event_capacity == 0) return;
  if (events_.size() == cfg_.event_capacity) events_.pop_front();
  events_.push_back(event);
}

void FlightRecorder::on_sample(const TelemetrySample& sample) {
  if (cfg_.sample_capacity == 0) return;
  if (samples_.size() == cfg_.sample_capacity) samples_.pop_front();
  samples_.push_back(sample);
}

void FlightRecorder::on_audit_record(double now_s, const AuditRecord& record) {
  if (audit_dumps_ >= cfg_.max_audit_dumps) {
    ++audit_suppressed_;
    return;
  }
  ++audit_dumps_;
  dump(now_s, "audit-record", &record);
}

void FlightRecorder::dump(double now_s, std::string_view reason,
                          const AuditRecord* trigger) {
  const std::uint64_t seq = ++dumps_;
  if (sink_ == nullptr || !sink_->is_open()) return;

  std::ostringstream header;
  {
    json::Writer w(header);
    w.begin_object();
    w.kv("type", "flight_dump");
    w.kv("seq", seq);
    w.kv("t_s", now_s);
    w.kv("reason", reason);
    w.key("trigger");
    if (trigger != nullptr) {
      append_json(w, *trigger);
    } else {
      w.null();
    }
    w.kv("events_recorded", events_recorded_);
    w.kv("events_retained", static_cast<std::uint64_t>(events_.size()));
    w.kv("samples_retained", static_cast<std::uint64_t>(samples_.size()));
    w.end_object();
  }
  sink_->write_line(header.str());

  for (const trace::TraceEvent& event : events_) {
    sink_->write_line(flight_event_line(event, seq));
  }
  for (const TelemetrySample& sample : samples_) {
    sink_->write_line(flight_sample_line(sample, seq));
  }

  std::ostringstream footer;
  {
    json::Writer w(footer);
    w.begin_object();
    w.kv("type", "flight_dump_end");
    w.kv("seq", seq);
    w.end_object();
  }
  sink_->write_line(footer.str());
}

}  // namespace sstsp::obs
