// Minimal JSON support for the observability layer.
//
// Writer: a streaming emitter with automatic comma/colon placement, used by
// the metrics registry, the profiler, the trace JSONL sink and the run-result
// serializer.  Emits RFC 8259 JSON (UTF-8 pass-through, \uXXXX escapes for
// control characters); non-finite doubles are emitted as null so the output
// stays parseable by jq/pandas.
//
// Value/parse: a small recursive-descent parser, enough to round-trip what
// the Writer produces.  Used by the JSONL round-trip tests and available to
// tools; not meant as a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sstsp::obs::json {

/// Escapes a string for inclusion in a JSON document (no surrounding
/// quotes).
[[nodiscard]] std::string escape(std::string_view s);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits an object key; must be followed by exactly one value (or
  /// begin_object/begin_array).
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  Writer& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  Writer& kv_null(std::string_view k) {
    key(k);
    return null();
  }

 private:
  void separator();

  std::ostream& os_;
  // One frame per open container: whether anything was emitted in it yet,
  // and whether a key is pending its value.
  std::vector<bool> has_item_;
  bool key_pending_{false};
};

/// Parsed JSON value (tests and tooling only; not performance-sensitive).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<std::pair<std::string, Value>> object;  // insertion order
  std::vector<Value> array;
  /// 1-based source line the value started on; lets consumers (config
  /// loader, fault-plan parser) point at the offending line of a file.
  int line{0};

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view k) const;
};

/// Parses one JSON document (surrounding whitespace allowed); nullopt on any
/// syntax error or trailing garbage.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// Re-emits a parsed value through a Writer (used to splice nested config
/// sections back into flag arguments, and by round-trip tests).
void write(const Value& v, Writer& w);

/// Compact textual form of a parsed value.  parse(dump(v)) reproduces v
/// (modulo the shortest-round-trippable number formatting the Writer uses),
/// and dump(parse(dump(v))) is a fixpoint — the identity the config
/// round-trip tests assert.
[[nodiscard]] std::string dump(const Value& v);

}  // namespace sstsp::obs::json
