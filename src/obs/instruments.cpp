#include "obs/instruments.h"

#include <string>

namespace sstsp::obs {

Instruments::Instruments(Registry& registry)
    : registry_(&registry),
      adjustment_rate_ppm_(&registry.histogram("station.adjustment_rate_ppm")),
      coarse_step_us_(&registry.histogram("station.coarse_step_us")),
      reject_offset_us_(&registry.histogram("station.reject_offset_us")),
      delivery_latency_us_(
          &registry.histogram("channel.delivery_latency_us")),
      queue_depth_(&registry.histogram("sim.event_queue_depth")),
      max_diff_us_(&registry.histogram("sync.max_diff_us")),
      node_error_us_(&registry.histogram("sync.node_error_us")) {
  for (std::size_t k = 0; k < trace::kEventKindCount; ++k) {
    const std::string name =
        "event." + std::string(to_string(static_cast<trace::EventKind>(k)));
    event_counters_[k] = &registry.counter(name);
  }
}

void Instruments::enable_discipline(
    std::string_view discipline_name,
    const std::vector<std::string>& verdict_names) {
  discipline_counters_.clear();
  discipline_counters_.reserve(verdict_names.size());
  for (const auto& verdict : verdict_names) {
    const std::string name =
        "discipline." + std::string(discipline_name) + "." + verdict;
    discipline_counters_.push_back(&registry_->counter(name));
  }
}

}  // namespace sstsp::obs
