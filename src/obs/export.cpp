#include "obs/export.h"

#include <ostream>

#include "obs/json.h"

namespace sstsp::obs {

void write_event_jsonl(std::ostream& os, const trace::TraceEvent& event) {
  json::Writer w(os);
  w.begin_object();
  w.kv("type", "event");
  w.kv("t_s", event.time.to_sec());
  w.kv("node", static_cast<std::uint64_t>(event.node));
  w.kv("kind", to_string(event.kind));
  if (event.peer != mac::kNoNode) {
    w.kv("peer", static_cast<std::uint64_t>(event.peer));
  }
  // Beacon-lifecycle correlation key (see trace/lifecycle.h); omitted —
  // like "peer" — when the event is not tied to a transmission.
  if (event.trace_id != 0) w.kv("trace_id", event.trace_id);
  w.kv("value_us", event.value_us);
  w.end_object();
  os << '\n';
}

void write_trace_jsonl(std::ostream& os, const trace::EventTrace& trace,
                       std::size_t limit) {
  const auto events =
      trace.select([](const trace::TraceEvent&) { return true; });
  const std::size_t start = events.size() > limit ? events.size() - limit : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    write_event_jsonl(os, events[i]);
  }
}

void attach_jsonl_sink(trace::EventTrace& trace, std::ostream& os) {
  trace.set_sink(
      [&os](const trace::TraceEvent& event) { write_event_jsonl(os, event); });
}

}  // namespace sstsp::obs
