#include "obs/export.h"

#include <memory>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace sstsp::obs {

void write_event_jsonl(std::ostream& os, const trace::TraceEvent& event) {
  json::Writer w(os);
  w.begin_object();
  w.kv("type", "event");
  w.kv("t_s", event.time.to_sec());
  w.kv("node", static_cast<std::uint64_t>(event.node));
  w.kv("kind", to_string(event.kind));
  if (event.peer != mac::kNoNode) {
    w.kv("peer", static_cast<std::uint64_t>(event.peer));
  }
  // Beacon-lifecycle correlation key (see trace/lifecycle.h); omitted —
  // like "peer" — when the event is not tied to a transmission.
  if (event.trace_id != 0) w.kv("trace_id", event.trace_id);
  w.kv("value_us", event.value_us);
  w.end_object();
  os << '\n';
}

void write_trace_jsonl(std::ostream& os, const trace::EventTrace& trace,
                       std::size_t limit) {
  const auto events =
      trace.select([](const trace::TraceEvent&) { return true; });
  const std::size_t start = events.size() > limit ? events.size() - limit : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    write_event_jsonl(os, events[i]);
  }
}

void attach_jsonl_sink(trace::EventTrace& trace, std::ostream& os) {
  // Stage each line in a reused buffer and hand it to the stream as one
  // write + flush: the file only ever grows by whole lines, so a crashed
  // or killed process cannot leave a torn final line behind for
  // sstsp_tracetool to choke on.
  auto buffer = std::make_shared<std::ostringstream>();
  trace.set_sink([&os, buffer](const trace::TraceEvent& event) {
    buffer->str({});
    write_event_jsonl(*buffer, event);
    const std::string line = buffer->str();
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
    os.flush();
  });
}

}  // namespace sstsp::obs
