#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sstsp::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::separator() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already emitted its ':'
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) os_ << ',';
    has_item_.back() = true;
  }
}

Writer& Writer::begin_object() {
  separator();
  os_ << '{';
  has_item_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  has_item_.pop_back();
  os_ << '}';
  return *this;
}

Writer& Writer::begin_array() {
  separator();
  os_ << '[';
  has_item_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  has_item_.pop_back();
  os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  separator();
  os_ << '"' << escape(k) << "\":";
  key_pending_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  separator();
  os_ << '"' << escape(v) << '"';
  return *this;
}

Writer& Writer::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  // Integral values print as integers ("30", not "3e+01").
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os_ << static_cast<long long>(v);
    return *this;
  }
  // Shortest round-trippable representation.
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      os_ << shorter;
      return *this;
    }
  }
  os_.write(buf, n);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  separator();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  separator();
  os_ << v;
  return *this;
}

Writer& Writer::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  separator();
  os_ << "null";
  return *this;
}

const Value* Value::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == k) return &value;
  }
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos{0};
  int line{1};

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      if (text[pos] == '\n') ++line;
      ++pos;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '\n') ++line;  // invalid in strict JSON, but keep line honest
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) return std::nullopt;
        const char esc = text[pos++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos + 4 > text.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            // The writer only escapes control characters; decode the BMP
            // code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > 64) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    Value v;
    v.line = line;
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      v.kind = Value::Kind::kNull;
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      v.kind = Value::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (c == '{') {
      ++pos;
      v.kind = Value::Kind::kObject;
      skip_ws();
      if (eat('}')) return v;
      while (true) {
        skip_ws();
        auto k = parse_string();
        if (!k) return std::nullopt;
        if (!eat(':')) return std::nullopt;
        auto member = parse_value(depth + 1);
        if (!member) return std::nullopt;
        v.object.emplace_back(std::move(*k), std::move(*member));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = Value::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      while (true) {
        auto element = parse_value(depth + 1);
        if (!element) return std::nullopt;
        v.array.push_back(std::move(*element));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    v.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return std::nullopt;
    v.kind = Value::Kind::kNumber;
    return v;
  }
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value(0);
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

void write(const Value& v, Writer& w) {
  switch (v.kind) {
    case Value::Kind::kNull:
      w.null();
      return;
    case Value::Kind::kBool:
      w.value(v.boolean);
      return;
    case Value::Kind::kNumber:
      w.value(v.number);
      return;
    case Value::Kind::kString:
      w.value(std::string_view(v.string));
      return;
    case Value::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.object) {
        w.key(key);
        write(member, w);
      }
      w.end_object();
      return;
    case Value::Kind::kArray:
      w.begin_array();
      for (const Value& element : v.array) write(element, w);
      w.end_array();
      return;
  }
}

std::string dump(const Value& v) {
  std::ostringstream os;
  Writer w(os);
  write(v, w);
  return os.str();
}

}  // namespace sstsp::obs::json
