// Phase-sampling profiler: low-overhead, always-on-capable.
//
// Where the scoped Profiler charges exact exclusive time per span edge, the
// sampler observes the run at a fixed interval and aggregates what it sees
// into the metrics registry — cheap enough to leave on in production-style
// runs, and the measurement hook the future sharded kernel will report
// per-shard through (Options::prefix names the shard).
//
// Two modes:
//   * Sim (virtual-time tick): Simulator::step() calls on_dispatch() for
//     every event — one double compare when no sample is due.  When the
//     virtual clock crosses the next interval boundary the sampler records
//     event-queue depth, events-per-interval, and (when a Profiler is
//     attached) per-phase self-time deltas into registry histograms.  The
//     tick schedule is pure virtual time, so enabling the sampler adds NO
//     simulator events and NO RNG draws: seeded runs stay byte-identical
//     on every other output.
//   * Live (ITIMER_PROF / SIGPROF): a classic statistical profiler.  The
//     signal handler reads the Profiler's atomic current phase and bumps a
//     per-phase atomic hit counter — nothing else, so it is async-signal-
//     safe.  ITIMER_PROF counts process CPU time, so a reactor blocked in
//     ppoll() accrues no hits; idle time is covered by the reactor's own
//     wait-vs-work accounting (net::Reactor::wait_ns/work_ns), published
//     alongside.  publish_live() folds the handler's atomics into registry
//     counters from the reactor thread.
//
// Metrics written (all under Options::prefix, default "sampler"):
//   <p>.samples                  counter   sim-mode samples taken
//   <p>.queue_depth              histogram pending events at each sample
//   <p>.events_per_sample        histogram events dispatched per interval
//   <p>.phase_self_us.<phase>    histogram per-interval self time (µs)
//   <p>.hits.<phase> / <p>.hits.idle  counter  live-mode SIGPROF hits
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sstsp::obs {

class PhaseSampler {
 public:
  struct Options {
    /// Sampling period: virtual seconds in sim mode, CPU seconds (itimer)
    /// in live mode.  Default ~1 kHz.
    double interval_s{0.001};
    /// Metric-name prefix; a sharded kernel gives each shard its own.
    std::string prefix{"sampler"};
  };

  PhaseSampler(const Options& options, Registry& registry);
  ~PhaseSampler();

  PhaseSampler(const PhaseSampler&) = delete;
  PhaseSampler& operator=(const PhaseSampler&) = delete;

  /// Optional: with a profiler attached, sim samples record per-phase
  /// self-time deltas and live samples attribute hits to phases.
  void attach_profiler(const Profiler* profiler) { profiler_ = profiler; }

  /// Sim-mode hook, called by Simulator::step() for every event.  Cost when
  /// no sample is due: an increment and a double compare.
  void on_dispatch(double now_s, std::uint64_t queue_depth) {
    ++events_;
    if (now_s < next_s_) return;
    sample(now_s, queue_depth);
  }

  /// Installs the SIGPROF handler and arms ITIMER_PROF.  At most one live
  /// sampler per process; false + *error when another is already armed (or
  /// the syscalls fail).
  [[nodiscard]] bool start_live(std::string* error);
  /// Disarms the timer and restores the previous handler.  Idempotent;
  /// also run by the destructor.
  void stop_live();
  /// Folds the handler's atomic hit counts into the registry counters.
  /// Call from the owning (reactor) thread, e.g. on each telemetry tick
  /// and once before snapshotting.
  void publish_live();

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] bool live() const { return live_; }
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  static void sigprof_handler(int);
  void sample(double now_s, std::uint64_t queue_depth);

  Options opt_;
  const Profiler* profiler_{nullptr};

  // Sim mode.
  double next_s_;
  std::uint64_t events_{0};
  std::uint64_t prev_events_{0};
  std::uint64_t samples_{0};
  std::array<std::uint64_t, kPhaseCount> prev_phase_ns_{};

  // Registry handles, resolved once at construction.
  Counter* samples_total_;
  Histogram* queue_depth_hist_;
  Histogram* events_per_sample_hist_;
  std::array<Histogram*, kPhaseCount> phase_self_hist_{};
  std::array<Counter*, kPhaseCount + 1> hit_counters_{};  // +1: idle

  // Live mode.  hits_ is written by the signal handler (relaxed atomics
  // only), drained by publish_live() on the reactor thread.
  bool live_{false};
  std::array<std::atomic<std::uint64_t>, kPhaseCount + 1> hits_{};
  std::array<std::uint64_t, kPhaseCount + 1> published_{};
};

}  // namespace sstsp::obs
