// Chrome-trace-event / Perfetto timeline export.
//
// Renders a run as a `{"traceEvents":[...]}` JSON document loadable in
// ui.perfetto.dev (or chrome://tracing): protocol events become instant
// events on one track per node, beacon-lifecycle trace_id chains become
// flow arrows (tx -> rx -> auth -> adjustment), profiler phase spans become
// nested B/E duration events, and fault-plan marks plus audit records
// become global instants.  Telemetry gauges can be attached as counter
// tracks ("C" events) so cluster offset and queue depth plot alongside.
//
// Two clock domains share the file, kept on separate "processes":
//   * pid 1 "protocol (virtual time)" — ts is simulator/virtual time; one
//     tid per node, plus a marks track.  Deterministic for seeded runs.
//   * pid 2 "profiler (wall time)"    — ts is wall time since the writer
//     opened; B/E spans from the scoped Profiler.  Nondeterministic by
//     nature (real durations).
// Perfetto renders both; cross-domain alignment is approximate and only
// the within-domain ordering is meaningful (documented in DESIGN.md §11).
//
// The writer is a pure observer: attaching it adds no simulator events and
// draws nothing from any RNG stream, so a seeded run's every other output
// byte is identical with the timeline on or off (asserted by tests).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/profiler.h"
#include "trace/event_trace.h"

namespace sstsp::obs {

namespace json {
class Writer;
}  // namespace json

class TimelineWriter {
 public:
  struct Options {
    /// Hard cap on emitted trace events; past it the writer counts drops
    /// (reported via dropped()) instead of growing the file without bound.
    /// 1M events is ~150 MB of JSON — plenty for a 60 s n=500 run.
    std::uint64_t max_events{1'000'000};
  };

  TimelineWriter() = default;
  ~TimelineWriter() { finish(); }

  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;

  /// Opens (truncating) `path` and writes the document preamble; false +
  /// *error on failure.
  [[nodiscard]] bool open(const std::string& path, std::string* error,
                          const Options& options);
  [[nodiscard]] bool open(const std::string& path, std::string* error) {
    return open(path, error, Options{});
  }
  [[nodiscard]] bool is_open() const { return os_.is_open() && !finished_; }

  /// One protocol event: instant on pid 1 / tid = node (virtual-time ts),
  /// plus flow start/step events stitching the beacon's trace_id chain.
  void protocol_event(const trace::TraceEvent& event);

  /// Profiler span edges: nested B/E events on pid 2 (wall-time ts).  The
  /// first call anchors wall zero.  Wire via Profiler::set_span_sink.
  void phase_begin(Phase phase, std::uint64_t wall_ns);
  void phase_end(Phase phase, std::uint64_t wall_ns);

  /// Global instant on the marks track (virtual-time ts): fault-plan
  /// activation/recovery marks, audit records.
  void mark(std::string_view name, std::string_view category, double t_s);

  /// Counter track sample (virtual-time ts): telemetry gauges such as
  /// cluster max offset or event-queue depth.
  void counter(std::string_view name, double t_s, double value);

  /// Closes the traceEvents array and the document.  Idempotent; also run
  /// by the destructor.
  void finish();

  [[nodiscard]] std::uint64_t events_written() const { return written_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  bool begin_event();  // comma bookkeeping + cap check
  void metadata(int pid, std::int64_t tid, std::string_view what,
                std::string_view name);
  void ensure_node_track(std::int64_t node);

  std::ofstream os_;
  Options opt_{};
  bool finished_{true};  // open() flips to false
  bool first_{true};
  std::uint64_t written_{0};
  std::uint64_t dropped_{0};
  std::uint64_t wall_anchor_ns_{0};
  bool wall_anchored_{false};
  std::unordered_set<std::int64_t> named_nodes_;
  std::unordered_set<std::uint64_t> seen_flows_;
};

/// Structural validity check for a trace-event JSON document: the top level
/// is an object with a "traceEvents" array, every element has a known "ph",
/// a numeric "ts" (except metadata), string "name"/"cat" where required,
/// "dur" on "X" events and "id" on flow events, and B/E events balance per
/// (pid, tid).  Returns true when loadable; appends one message per defect
/// to *errors (capped at 20).  Used by the schema tests and
/// `sstsp_tracetool timeline --check`.
[[nodiscard]] bool validate_trace_event_json(std::string_view text,
                                             std::vector<std::string>* errors);

}  // namespace sstsp::obs
