#include "obs/sampler.h"

#include <sys/time.h>

#include <cmath>
#include <csignal>

namespace sstsp::obs {

namespace {

// SIGPROF is process-global, so live sampling is necessarily a singleton.
PhaseSampler* g_live_sampler = nullptr;
struct sigaction g_previous_action;

}  // namespace

PhaseSampler::PhaseSampler(const Options& options, Registry& registry)
    : opt_(options), next_s_(options.interval_s) {
  samples_total_ = &registry.counter(opt_.prefix + ".samples");
  queue_depth_hist_ = &registry.histogram(opt_.prefix + ".queue_depth");
  events_per_sample_hist_ =
      &registry.histogram(opt_.prefix + ".events_per_sample");
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::string name(phase_name(static_cast<Phase>(i)));
    phase_self_hist_[i] =
        &registry.histogram(opt_.prefix + ".phase_self_us." + name);
    hit_counters_[i] = &registry.counter(opt_.prefix + ".hits." + name);
  }
  hit_counters_[kPhaseCount] = &registry.counter(opt_.prefix + ".hits.idle");
}

PhaseSampler::~PhaseSampler() { stop_live(); }

void PhaseSampler::sample(double now_s, std::uint64_t queue_depth) {
  // Catch-up semantics: after a long event gap the next sample is one full
  // interval from *now*, not a burst of back-dated samples.
  next_s_ = now_s + opt_.interval_s;
  ++samples_;
  samples_total_->inc();
  queue_depth_hist_->record(static_cast<double>(queue_depth));
  events_per_sample_hist_->record(
      static_cast<double>(events_ - prev_events_));
  prev_events_ = events_;
  if (profiler_ == nullptr) return;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::uint64_t ns =
        profiler_->stats(static_cast<Phase>(i)).exclusive_ns;
    const std::uint64_t delta = ns - prev_phase_ns_[i];
    prev_phase_ns_[i] = ns;
    if (delta > 0) {
      phase_self_hist_[i]->record(static_cast<double>(delta) * 1e-3);
    }
  }
}

void PhaseSampler::sigprof_handler(int) {
  PhaseSampler* s = g_live_sampler;
  if (s == nullptr) return;
  const std::uint8_t phase =
      s->profiler_ != nullptr ? s->profiler_->current_phase() : kPhaseNone;
  const std::size_t idx = phase < kPhaseCount ? phase : kPhaseCount;
  s->hits_[idx].fetch_add(1, std::memory_order_relaxed);
}

bool PhaseSampler::start_live(std::string* error) {
  if (live_) return true;
  if (g_live_sampler != nullptr) {
    if (error != nullptr) {
      *error = "another live phase sampler is already armed (SIGPROF is "
               "process-global)";
    }
    return false;
  }
  struct sigaction action {};
  action.sa_handler = &PhaseSampler::sigprof_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    if (error != nullptr) *error = "sigaction(SIGPROF) failed";
    return false;
  }
  g_live_sampler = this;
  const double period = opt_.interval_s > 0.0 ? opt_.interval_s : 0.001;
  itimerval timer{};
  timer.it_interval.tv_sec = static_cast<time_t>(period);
  timer.it_interval.tv_usec = static_cast<suseconds_t>(
      std::fmod(period, 1.0) * 1e6);
  if (timer.it_interval.tv_sec == 0 && timer.it_interval.tv_usec == 0) {
    timer.it_interval.tv_usec = 1000;
  }
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    sigaction(SIGPROF, &g_previous_action, nullptr);
    g_live_sampler = nullptr;
    if (error != nullptr) *error = "setitimer(ITIMER_PROF) failed";
    return false;
  }
  live_ = true;
  return true;
}

void PhaseSampler::stop_live() {
  if (!live_) return;
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  g_live_sampler = nullptr;
  live_ = false;
  publish_live();
}

void PhaseSampler::publish_live() {
  for (std::size_t i = 0; i <= kPhaseCount; ++i) {
    const std::uint64_t current =
        hits_[i].load(std::memory_order_relaxed);
    const std::uint64_t delta = current - published_[i];
    if (delta > 0) hit_counters_[i]->inc(delta);
    published_[i] = current;
  }
}

}  // namespace sstsp::obs
