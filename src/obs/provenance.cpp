#include "obs/provenance.h"

#include <sys/utsname.h>

#include "obs/json.h"

// Configure-time facts arrive as compile definitions on this one TU
// (src/CMakeLists.txt); default them so stray builds still compile.
#ifndef SSTSP_GIT_SHA
#define SSTSP_GIT_SHA "unknown"
#endif
#ifndef SSTSP_BUILD_TYPE
#define SSTSP_BUILD_TYPE "unknown"
#endif
#ifndef SSTSP_CXX_FLAGS
#define SSTSP_CXX_FLAGS ""
#endif

namespace sstsp::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("g++ ") + __VERSION__;
#else
  return __VERSION__;
#endif
}

std::string host_id() {
  utsname u{};
  if (uname(&u) != 0) return "unknown";
  return std::string(u.sysname) + " " + u.release + " " + u.machine + " (" +
         u.nodename + ")";
}

Provenance capture() {
  Provenance p;
  p.git_sha = SSTSP_GIT_SHA;
  p.compiler = compiler_id();
  p.build_type = SSTSP_BUILD_TYPE;
  p.flags = SSTSP_CXX_FLAGS;
  p.host = host_id();
  return p;
}

}  // namespace

const Provenance& provenance() {
  static const Provenance p = capture();
  return p;
}

void append_provenance_json(json::Writer& w) {
  const Provenance& p = provenance();
  w.key("provenance").begin_object();
  w.kv("git_sha", p.git_sha);
  w.kv("compiler", p.compiler);
  w.kv("build_type", p.build_type);
  w.kv("flags", p.flags);
  w.kv("host", p.host);
  w.end_object();
}

}  // namespace sstsp::obs
