#include "filter/threshold_filter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sstsp::filter {

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

std::optional<double> ThresholdResult::mean() const {
  if (kept.empty()) return std::nullopt;
  const double sum = std::accumulate(kept.begin(), kept.end(), 0.0);
  return sum / static_cast<double>(kept.size());
}

ThresholdResult threshold_filter(const std::vector<double>& samples,
                                 double threshold) {
  ThresholdResult result;
  if (samples.empty()) return result;
  result.center = median(samples);
  for (const double s : samples) {
    if (std::fabs(s - result.center) <= threshold) {
      result.kept.push_back(s);
    } else {
      ++result.rejected;
    }
  }
  return result;
}

}  // namespace sstsp::filter
