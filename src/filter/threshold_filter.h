// Threshold-based outlier filter (the second Song-Zhu-Cao mechanism).
//
// Operates on clock-offset samples via a "time transformation": offsets are
// re-expressed relative to a robust center (the sample median, which a
// minority of malicious samples cannot move arbitrarily), and any sample
// farther than `threshold` from that center is discarded.  The survivors'
// mean is the offset estimate the coarse synchronization phase applies.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace sstsp::filter {

struct ThresholdResult {
  std::vector<double> kept;
  std::size_t rejected{0};
  double center{0.0};  ///< median used as the transformation origin

  /// Mean of the surviving samples; nullopt when everything was rejected.
  [[nodiscard]] std::optional<double> mean() const;
};

/// Filters `samples`, keeping those within `threshold` of the median.
[[nodiscard]] ThresholdResult threshold_filter(
    const std::vector<double>& samples, double threshold);

/// Median of a sample vector (by copy; input untouched).  Average of the two
/// central order statistics for even sizes.
[[nodiscard]] double median(std::vector<double> xs);

}  // namespace sstsp::filter
