// Self-contained Student-t distribution (CDF and quantile).
//
// Needed by the GESD outlier test (filter/gesd.h), whose critical values are
// Student-t quantiles.  Implemented from scratch: log-gamma (Lanczos),
// regularized incomplete beta (Lentz continued fraction), CDF via the
// classical beta identity, quantile via bracketed bisection + Newton polish.
// Accuracy is ~1e-10 over the parameter range GESD uses (nu >= 1), verified
// against reference values in tests/filter_student_t_test.cpp.
#pragma once

namespace sstsp::filter {

/// ln Γ(x) for x > 0.
[[nodiscard]] double ln_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), x in [0, 1], a, b > 0.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// P(T <= t) for T ~ Student-t with `nu` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double nu);

/// Quantile: smallest t with CDF(t) >= p, p in (0, 1).
[[nodiscard]] double student_t_quantile(double p, double nu);

}  // namespace sstsp::filter
