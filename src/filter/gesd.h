// Generalized Extreme Studentized Deviate (GESD) outlier test.
//
// One of the two attack-accommodation filters of Song, Zhu & Cao
// ("Attack-Resilient Time Synchronization for WSNs", MASS'05), which the
// paper's coarse synchronization phase adopts to reject biased/malicious
// timestamp offsets before averaging (§3.3).  Given up to r suspected
// outliers and significance alpha, the test repeatedly studentizes the most
// extreme sample and compares against the Rosner critical value
//
//   lambda_i = (n-i) * t_{p, n-i-1} / sqrt((n-i-1 + t^2) * (n-i+1)),
//   p = 1 - alpha / (2 (n-i+1)).
//
// The number of outliers is the *largest* i with R_i > lambda_i (this
// two-sided "masking-proof" rule is what distinguishes GESD from naive
// sequential ESD).
#pragma once

#include <cstddef>
#include <vector>

namespace sstsp::filter {

struct GesdResult {
  /// Indices into the input vector flagged as outliers, in removal order
  /// (most extreme first).
  std::vector<std::size_t> outlier_indices;

  /// Per-round statistics, for diagnostics: R_i and lambda_i.
  std::vector<double> test_statistics;
  std::vector<double> critical_values;

  [[nodiscard]] bool has_outliers() const { return !outlier_indices.empty(); }
};

/// Runs GESD on `samples`.  `max_outliers` is r (must leave at least 3
/// samples behind); `alpha` is the significance level (0.05 typical).
/// Fewer than 5 samples: returns no outliers (test undefined).
[[nodiscard]] GesdResult gesd(const std::vector<double>& samples,
                              std::size_t max_outliers, double alpha = 0.05);

/// Convenience: the samples that survive the GESD test.
[[nodiscard]] std::vector<double> gesd_filter(
    const std::vector<double>& samples, std::size_t max_outliers,
    double alpha = 0.05);

}  // namespace sstsp::filter
