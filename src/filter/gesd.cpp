#include "filter/gesd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "filter/student_t.h"

namespace sstsp::filter {

namespace {

struct MeanSd {
  double mean;
  double sd;
};

MeanSd mean_sd(const std::vector<double>& xs,
               const std::vector<bool>& removed) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!removed[i]) {
      sum += xs[i];
      ++n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!removed[i]) {
      const double d = xs[i] - mean;
      ss += d * d;
    }
  }
  const double sd =
      (n > 1) ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return {mean, sd};
}

}  // namespace

GesdResult gesd(const std::vector<double>& samples, std::size_t max_outliers,
                double alpha) {
  GesdResult result;
  const std::size_t n = samples.size();
  if (n < 5 || max_outliers == 0) return result;
  max_outliers = std::min(max_outliers, n - 3);

  std::vector<bool> removed(n, false);
  std::vector<std::size_t> removal_order;
  removal_order.reserve(max_outliers);

  for (std::size_t i = 1; i <= max_outliers; ++i) {
    const auto [mean, sd] = mean_sd(samples, removed);
    // Degenerate spread: identical samples, nothing is an outlier.
    if (sd <= 0.0) break;

    // Most extreme remaining sample.
    std::size_t worst = n;
    double worst_dev = -1.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (removed[k]) continue;
      const double dev = std::fabs(samples[k] - mean);
      if (dev > worst_dev) {
        worst_dev = dev;
        worst = k;
      }
    }
    const double r_i = worst_dev / sd;

    // Rosner critical value for round i (remaining count before removal is
    // n - i + 1; the classical formula is stated with n and i).
    const auto ni = static_cast<double>(n - i);
    const double p = 1.0 - alpha / (2.0 * (ni + 1.0));
    const double t = student_t_quantile(p, ni - 1.0);
    const double lambda =
        ni * t / std::sqrt((ni - 1.0 + t * t) * (ni + 1.0));

    result.test_statistics.push_back(r_i);
    result.critical_values.push_back(lambda);

    removed[worst] = true;
    removal_order.push_back(worst);
  }

  // Largest i with R_i > lambda_i determines the outlier count.
  std::size_t outlier_count = 0;
  for (std::size_t i = 0; i < result.test_statistics.size(); ++i) {
    if (result.test_statistics[i] > result.critical_values[i]) {
      outlier_count = i + 1;
    }
  }
  result.outlier_indices.assign(removal_order.begin(),
                                removal_order.begin() +
                                    static_cast<std::ptrdiff_t>(outlier_count));
  return result;
}

std::vector<double> gesd_filter(const std::vector<double>& samples,
                                std::size_t max_outliers, double alpha) {
  const GesdResult r = gesd(samples, max_outliers, alpha);
  std::vector<bool> is_outlier(samples.size(), false);
  for (const std::size_t idx : r.outlier_indices) is_outlier[idx] = true;
  std::vector<double> kept;
  kept.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!is_outlier[i]) kept.push_back(samples[i]);
  }
  return kept;
}

}  // namespace sstsp::filter
