#include "filter/student_t.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace sstsp::filter {

double ln_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - ln_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

namespace {

/// Continued-fraction kernel for the incomplete beta (Lentz's algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry that keeps the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double nu) {
  assert(nu > 0.0);
  if (t == 0.0) return 0.5;
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
  return (t > 0.0) ? 1.0 - tail : tail;
}

double student_t_quantile(double p, double nu) {
  assert(p > 0.0 && p < 1.0);
  if (p == 0.5) return 0.0;
  // Symmetric: solve for the upper half only.
  if (p < 0.5) return -student_t_quantile(1.0 - p, nu);

  // Bracket: CDF is monotone; expand hi until it covers p.
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_cdf(hi, nu) < p && hi < 1e12) hi *= 2.0;

  // Bisection to ~1e-12 of the bracket, then done — Newton is unnecessary
  // at this accuracy and the density is cheap.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, nu) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace sstsp::filter
