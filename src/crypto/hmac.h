// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// SSTSP authenticates the beacon body (B, j) with
// HMAC_{h^{n-j}(s_ref)}(B, j); the output is truncated to 128 bits in the
// frame, matching the paper's 92-byte secured beacon.
#pragma once

#include <span>

#include "crypto/sha256.h"

namespace sstsp::crypto {

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Beacon-field form: truncated to the 128-bit value carried on air.
[[nodiscard]] Digest128 hmac_sha256_128(std::span<const std::uint8_t> key,
                                        std::span<const std::uint8_t> message);

/// Constant-time comparison (not strictly needed in a simulator, but the
/// verifier is written the way a deployment would write it).
[[nodiscard]] bool digest_equal(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b);

}  // namespace sstsp::crypto
