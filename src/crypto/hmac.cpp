#include "crypto/hmac.h"

#include <algorithm>
#include <array>

namespace sstsp::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad;
  std::array<std::uint8_t, kBlock> opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(std::span<const std::uint8_t>(inner_digest.data(),
                                             inner_digest.size()));
  return outer.finish();
}

Digest128 hmac_sha256_128(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> message) {
  return truncate128(hmac_sha256(key, message));
}

bool digest_equal(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace sstsp::crypto
