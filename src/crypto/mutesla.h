// µTESLA (Perrig et al., SPINS 2001) as used by SSTSP §3.3.
//
// The schedule is interval-indexed: interval j spans
// [T0 + j*BP - BP/2, T0 + j*BP + BP/2] in synchronized ("adjusted") time, and
// a beacon emitted in interval j is keyed with K_j = v_{n-j} while disclosing
// K_{j-1} = v_{n-j+1}.  A receiver may only accept the interval-j beacon
// while K_j is still undisclosed, i.e. while its own (loosely synchronized)
// clock is inside interval j — the "security condition" enforced by
// MuTeslaSchedule::interval_check.
//
// The signer/verifier pair below is transport-agnostic: it deals in byte
// spans and interval indices; frame assembly lives in core/beacon_security.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/verify_cache.h"

namespace sstsp::crypto {

/// Interval bookkeeping shared by signer and verifier.
struct MuTeslaSchedule {
  double t0_us{0.0};        ///< adjusted-time origin of the chain
  double interval_us{1e5};  ///< one beacon period
  std::size_t n{0};         ///< chain length; valid intervals are [1, n]

  /// Interval index whose nominal emission time is closest to `time_us`
  /// (interval j's beacon is expected at T0 + j*interval).
  [[nodiscard]] std::int64_t interval_of(double time_us) const {
    return static_cast<std::int64_t>((time_us - t0_us) / interval_us + 0.5);
  }

  /// Nominal emission time of interval j's beacon.
  [[nodiscard]] double emission_time(std::int64_t j) const {
    return t0_us + static_cast<double>(j) * interval_us;
  }

  /// Security condition: a beacon claiming interval j, observed at local
  /// adjusted time `local_us`, is acceptable iff the local clock is still
  /// inside interval j (with `slack_us` tolerance for residual sync error
  /// and propagation).  Outside that window the key may already be public.
  [[nodiscard]] bool interval_check(std::int64_t j, double local_us,
                                    double slack_us) const {
    if (j < 1 || static_cast<std::size_t>(j) > n) return false;
    const double center = emission_time(j);
    const double half = interval_us / 2.0;
    return local_us >= center - half - slack_us &&
           local_us <= center + half + slack_us;
  }
};

/// Produces keys and MACs for a node's own chain.
class MuTeslaSigner {
 public:
  MuTeslaSigner(const ChainParams& chain, MuTeslaSchedule schedule,
                std::size_t checkpoint_spacing = 128);

  [[nodiscard]] const MuTeslaSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const Digest& anchor() const { return chain_.anchor(); }

  /// K_j = v_{n-j}; requires 1 <= j <= n.
  [[nodiscard]] Digest key_for_interval(std::int64_t j) const;

  /// Key disclosed inside the interval-j beacon: K_{j-1} (for j == 1 the
  /// disclosed element is the anchor-adjacent v_n itself, which carries no
  /// authentication value but keeps the frame layout uniform).
  [[nodiscard]] Digest disclosed_key(std::int64_t j) const;

  /// MAC over the beacon body for interval j.
  [[nodiscard]] Digest128 mac(std::int64_t j,
                              std::span<const std::uint8_t> body) const;

 private:
  CheckpointedChain chain_;
  MuTeslaSchedule schedule_;
};

/// Verifies disclosed keys against a published anchor, caching the most
/// recent authenticated element so steady-state verification costs one hash
/// per beacon (the optimization §3.3 calls out).
class MuTeslaVerifier {
 public:
  /// `cache`, when non-null, memoizes the pure hash/MAC comparisons across
  /// the verifiers of one network (see crypto/verify_cache.h); results are
  /// identical with or without it.
  MuTeslaVerifier(Digest anchor, MuTeslaSchedule schedule,
                  VerifyCache* cache = nullptr)
      : schedule_(schedule), verified_pos_(schedule.n), verified_(anchor),
        cache_(cache) {}

  [[nodiscard]] const MuTeslaSchedule& schedule() const { return schedule_; }

  /// Checks that `key` is the chain element for interval j (position n-j),
  /// by hashing it forward to the last authenticated element.  On success
  /// the cache advances.  Returns false for stale intervals (j older than
  /// an already-verified disclosure) and for mismatching keys.
  [[nodiscard]] bool verify_key(std::int64_t j, const Digest& key);

  /// MAC check of an interval-j beacon body against an already-verified key.
  [[nodiscard]] static bool verify_mac(const Digest& key, std::int64_t j,
                                       std::span<const std::uint8_t> body,
                                       const Digest128& mac);

  /// Same check through the attached result cache (falls back to
  /// verify_mac when no cache is set).
  [[nodiscard]] bool check_mac(const Digest& key, std::int64_t j,
                               std::span<const std::uint8_t> body,
                               const Digest128& mac) const;

  [[nodiscard]] std::uint64_t hash_ops() const { return hash_ops_; }
  /// Chain position of the newest verified element (n means "anchor only").
  [[nodiscard]] std::size_t verified_position() const { return verified_pos_; }

 private:
  MuTeslaSchedule schedule_;
  std::size_t verified_pos_;  // position of verified_ in the chain
  Digest verified_;
  std::uint64_t hash_ops_{0};
  VerifyCache* cache_{nullptr};
};

/// Canonical MAC input for beacon interval j: body || LE64(j).  Shared by
/// signer and verifier so there is exactly one encoding.
[[nodiscard]] std::vector<std::uint8_t> mac_input(
    std::int64_t j, std::span<const std::uint8_t> body);

}  // namespace sstsp::crypto
