// Memoization of pure µTESLA verification results (simulator fast path).
//
// When a beacon fans out to N receivers, every receiver in the same chain
// state performs the *identical* two checks: "does the disclosed key hash
// forward to the expected element?" and "does the stored body authenticate
// under this key?".  Both are pure functions of their inputs, so one small
// per-network result cache lets the first receiver compute and the other
// N-1 hit — turning the dominant crypto-verify phase from O(N) SHA-256
// compressions per beacon into O(1).
//
// This is a simulator optimization, not a protocol change: per-station
// hash_ops accounting still charges the modeled cost (MuTeslaVerifier adds
// the walk distance whether or not the cache hits), and receivers whose
// verifier state diverges (slept through intervals, different verified
// position) simply miss and compute for real.  See DESIGN.md "Performance".
//
// Not thread-safe by design: each run::Network owns exactly one cache (via
// core::KeyDirectory) and runs on one thread; run_sweep parallelism is
// across networks, never within one.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sstsp::crypto {

class VerifyCache {
 public:
  /// Memoized `hash_times(key, distance) == expect`.
  [[nodiscard]] bool chain_walk_matches(const Digest& key,
                                        std::size_t distance,
                                        const Digest& expect) {
    for (const WalkEntry& e : walks_) {
      if (e.valid && e.distance == distance && e.key == key &&
          e.expect == expect) {
        ++hits_;
        return e.match;
      }
    }
    ++misses_;
    const bool match = hash_times(key, distance) == expect;
    WalkEntry& slot = walks_[walk_next_];
    walk_next_ = (walk_next_ + 1) % walks_.size();
    slot = WalkEntry{key, expect, distance, match, true};
    return match;
  }

  /// Memoized truncated-HMAC check: `hmac_sha256_128(key, input) == mac`,
  /// where `input` is the canonical beacon MAC input (body || LE64(j), see
  /// crypto::mac_input).  Inputs longer than the inline entry capacity are
  /// verified directly without caching (beacon bodies are ~20 bytes).
  [[nodiscard]] bool mac_matches(const Digest& key,
                                 std::span<const std::uint8_t> input,
                                 const Digest128& mac) {
    if (input.size() > kMacInputCapacity) {
      return hmac_sha256_128(
                 std::span<const std::uint8_t>(key.data(), key.size()),
                 input) == mac;
    }
    for (const MacEntry& e : macs_) {
      if (e.valid && e.input_len == input.size() && e.key == key &&
          e.mac == mac &&
          std::equal(input.begin(), input.end(), e.input.begin())) {
        ++hits_;
        return e.match;
      }
    }
    ++misses_;
    const bool match =
        hmac_sha256_128(std::span<const std::uint8_t>(key.data(), key.size()),
                        input) == mac;
    MacEntry& slot = macs_[mac_next_];
    mac_next_ = (mac_next_ + 1) % macs_.size();
    slot.key = key;
    slot.mac = mac;
    slot.input_len = input.size();
    std::copy(input.begin(), input.end(), slot.input.begin());
    slot.match = match;
    slot.valid = true;
    return match;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kMacInputCapacity = 48;

  struct WalkEntry {
    Digest key{};
    Digest expect{};
    std::size_t distance{0};
    bool match{false};
    bool valid{false};
  };
  struct MacEntry {
    Digest key{};
    Digest128 mac{};
    std::array<std::uint8_t, kMacInputCapacity> input{};
    std::size_t input_len{0};
    bool match{false};
    bool valid{false};
  };

  // Small rings are enough: fan-out hits are strictly temporal (all N
  // receivers verify the same beacon back-to-back); a handful of slots
  // covers interleaved senders in multi-hop topologies.
  std::array<WalkEntry, 8> walks_{};
  std::array<MacEntry, 8> macs_{};
  std::size_t walk_next_{0};
  std::size_t mac_next_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

}  // namespace sstsp::crypto
