// One-way hash chains and traversal/storage strategies.
//
// Chain convention used throughout the library:
//
//     v_0 = seed,   v_i = H(v_{i-1}),   anchor = v_n
//
// µTESLA key for beacon interval j (1 <= j <= n) is K_j = v_{n-j}; the key of
// interval j-1, v_{n-j+1}, is disclosed inside the interval-j beacon, which
// is why keys are consumed at *descending* chain positions.  Verifying a
// disclosed key means hashing it forward until it meets a previously
// authenticated element (ultimately the anchor): H^{j-1}(K_{j-1}) = v_n.
//
// §3.4 of the paper discusses the storage/recomputation trade-off and cites
// Jakobsson's fractal traversal [6].  We provide all three strategies behind
// one interface so the trade-off itself is testable and benchmarkable
// (bench/abl_overhead.cpp):
//
//   FullStorageTraversal — O(n) digests stored, O(1) hashes per step
//   RecomputeTraversal   — O(1) digests stored, O(n) hashes per step
//   FractalTraversal     — O(log n) digests stored, O(log n) amortized step
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/sha256.h"

namespace sstsp::crypto {

/// H applied once to a digest.
[[nodiscard]] Digest hash_once(const Digest& in);

/// H applied `times` times (times == 0 returns the input).
[[nodiscard]] Digest hash_times(Digest value, std::size_t times);

/// Derives a chain seed from an integer node identity and a scenario seed;
/// deterministic so simulations are reproducible.
[[nodiscard]] Digest derive_seed(std::uint64_t scenario_seed,
                                 std::uint64_t node_id);

/// Immutable chain description: seed and length n.
struct ChainParams {
  Digest seed{};
  std::size_t length{0};

  /// anchor = H^n(seed).
  [[nodiscard]] Digest anchor() const { return hash_times(seed, length); }
  /// v_i = H^i(seed); requires i <= length.
  [[nodiscard]] Digest element(std::size_t i) const {
    return hash_times(seed, i);
  }
};

/// Sequential producer of v_{n-1}, v_{n-2}, ..., v_0 — the order in which a
/// µTESLA signer consumes its keys.
class ChainTraversal {
 public:
  virtual ~ChainTraversal() = default;

  /// Chain position (index i of v_i) that the next call to next() returns;
  /// starts at n-1 and decreases to 0.
  [[nodiscard]] virtual std::size_t position() const = 0;
  [[nodiscard]] bool exhausted() const { return position() == kDone; }

  /// Returns the element at position() and advances.  Precondition:
  /// !exhausted().
  virtual Digest next() = 0;

  /// Number of digests currently resident (storage footprint metric).
  [[nodiscard]] virtual std::size_t stored_digests() const = 0;
  /// Cumulative hash invocations since construction (work metric).
  [[nodiscard]] virtual std::uint64_t hash_ops() const = 0;

 protected:
  static constexpr std::size_t kDone = static_cast<std::size_t>(-1);
};

/// Precomputes the whole chain; the classical memory-heavy option.
class FullStorageTraversal final : public ChainTraversal {
 public:
  explicit FullStorageTraversal(const ChainParams& params);

  [[nodiscard]] std::size_t position() const override { return pos_; }
  Digest next() override;
  [[nodiscard]] std::size_t stored_digests() const override {
    return elements_.size();
  }
  [[nodiscard]] std::uint64_t hash_ops() const override { return hash_ops_; }

 private:
  std::vector<Digest> elements_;  // v_0 .. v_{n-1}
  std::size_t pos_;
  std::uint64_t hash_ops_{0};
};

/// Stores only the seed; recomputes each element from scratch.
class RecomputeTraversal final : public ChainTraversal {
 public:
  explicit RecomputeTraversal(const ChainParams& params)
      : params_(params), pos_(params.length == 0 ? kDone : params.length - 1) {}

  [[nodiscard]] std::size_t position() const override { return pos_; }
  Digest next() override;
  [[nodiscard]] std::size_t stored_digests() const override { return 1; }
  [[nodiscard]] std::uint64_t hash_ops() const override { return hash_ops_; }

 private:
  ChainParams params_;
  std::size_t pos_;
  std::uint64_t hash_ops_{0};
};

/// Fractal (Jakobsson-style) traversal: a logarithmic stack of checkpoints
/// whose gaps halve as the walk descends.  stored_digests() is bounded by
/// ceil(log2 n) + 1 and the amortized hash cost per step is O(log n); both
/// bounds are asserted by tests/crypto_chain_test.cpp.
class FractalTraversal final : public ChainTraversal {
 public:
  explicit FractalTraversal(const ChainParams& params);

  [[nodiscard]] std::size_t position() const override { return pos_; }
  Digest next() override;
  [[nodiscard]] std::size_t stored_digests() const override {
    return checkpoints_.size();
  }
  [[nodiscard]] std::uint64_t hash_ops() const override { return hash_ops_; }

 private:
  struct Checkpoint {
    std::size_t pos;
    Digest value;
  };

  /// Walks the checkpoint stack forward until the top sits at pos_.
  void materialize();

  std::vector<Checkpoint> checkpoints_;  // ascending positions; top <= pos_
  std::size_t pos_;
  std::uint64_t hash_ops_{0};
};

/// Random-access chain reader with lazily built equidistant checkpoints —
/// what the in-simulator µTESLA signer uses (a reference node may assume the
/// role at an arbitrary interval).  Costs n hashes once, then at most
/// `spacing` hashes per access and n/spacing stored digests.
class CheckpointedChain {
 public:
  CheckpointedChain(const ChainParams& params, std::size_t spacing = 128);

  [[nodiscard]] const ChainParams& params() const { return params_; }
  [[nodiscard]] const Digest& anchor() const { return anchor_; }

  /// v_i for any i in [0, n].
  [[nodiscard]] Digest element(std::size_t i) const;

  [[nodiscard]] std::size_t stored_digests() const {
    return checkpoints_.size() + 1;
  }
  [[nodiscard]] std::uint64_t hash_ops() const { return hash_ops_; }

 private:
  ChainParams params_;
  std::size_t spacing_;
  std::vector<Digest> checkpoints_;  // v_0, v_spacing, v_2*spacing, ...
  Digest anchor_{};
  mutable std::uint64_t hash_ops_{0};
};

}  // namespace sstsp::crypto
