// SHA-256 (FIPS 180-4), implemented from scratch — the simulator has no
// external crypto dependency.  Verified in tests/crypto_sha256_test.cpp
// against the NIST example vectors and RFC 4231 (via hmac.h).
//
// The paper assumes a generic cryptographic hash with 128-bit output in the
// beacon; we use SHA-256 truncated to 128 bits (see Digest128), which keeps
// the 92-byte secured-beacon size of §3.4.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sstsp::crypto {

using Digest = std::array<std::uint8_t, 32>;
/// Truncated digest carried in beacon frames (paper: "128-bit hash values").
using Digest128 = std::array<std::uint8_t, 16>;

[[nodiscard]] Digest128 truncate128(const Digest& d);

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_{0};
  std::uint64_t total_bytes_{0};
};

/// Hex encoding for tests and logs.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace sstsp::crypto
