#include "crypto/mutesla.h"

#include <cassert>

namespace sstsp::crypto {

std::vector<std::uint8_t> mac_input(std::int64_t j,
                                    std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> input;
  input.reserve(body.size() + 8);
  input.insert(input.end(), body.begin(), body.end());
  const auto uj = static_cast<std::uint64_t>(j);
  for (int i = 0; i < 8; ++i) {
    input.push_back(static_cast<std::uint8_t>(uj >> (8 * i)));
  }
  return input;
}

MuTeslaSigner::MuTeslaSigner(const ChainParams& chain,
                             MuTeslaSchedule schedule,
                             std::size_t checkpoint_spacing)
    : chain_(chain, checkpoint_spacing), schedule_(schedule) {
  assert(schedule_.n == chain.length);
}

Digest MuTeslaSigner::key_for_interval(std::int64_t j) const {
  assert(j >= 1 && static_cast<std::size_t>(j) <= schedule_.n);
  return chain_.element(schedule_.n - static_cast<std::size_t>(j));
}

Digest MuTeslaSigner::disclosed_key(std::int64_t j) const {
  assert(j >= 1 && static_cast<std::size_t>(j) <= schedule_.n);
  return chain_.element(schedule_.n - static_cast<std::size_t>(j) + 1);
}

Digest128 MuTeslaSigner::mac(std::int64_t j,
                             std::span<const std::uint8_t> body) const {
  const Digest key = key_for_interval(j);
  const auto input = mac_input(j, body);
  return hmac_sha256_128(std::span<const std::uint8_t>(key.data(), key.size()),
                         std::span<const std::uint8_t>(input.data(),
                                                       input.size()));
}

bool MuTeslaVerifier::verify_key(std::int64_t j, const Digest& key) {
  if (j < 1 || static_cast<std::size_t>(j) > schedule_.n) return false;
  const std::size_t pos = schedule_.n - static_cast<std::size_t>(j);
  if (pos >= verified_pos_) {
    // Stale or already-known disclosure.  Equal positions are accepted only
    // if the key matches what we already authenticated (idempotent re-check).
    return pos == verified_pos_ && digest_equal(key, verified_);
  }
  const std::size_t distance = verified_pos_ - pos;
  // The modeled cost is charged regardless of the simulator-side cache: a
  // real station walks the chain; only our wall-clock is being saved.
  hash_ops_ += distance;
  const bool match =
      cache_ != nullptr
          ? cache_->chain_walk_matches(key, distance, verified_)
          : digest_equal(hash_times(key, distance), verified_);
  if (!match) return false;
  verified_pos_ = pos;
  verified_ = key;
  return true;
}

bool MuTeslaVerifier::verify_mac(const Digest& key, std::int64_t j,
                                 std::span<const std::uint8_t> body,
                                 const Digest128& mac) {
  const auto input = mac_input(j, body);
  const Digest128 expected = hmac_sha256_128(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(input.data(), input.size()));
  return digest_equal(expected, mac);
}

bool MuTeslaVerifier::check_mac(const Digest& key, std::int64_t j,
                                std::span<const std::uint8_t> body,
                                const Digest128& mac) const {
  if (cache_ == nullptr) return verify_mac(key, j, body, mac);
  const auto input = mac_input(j, body);
  return cache_->mac_matches(
      key, std::span<const std::uint8_t>(input.data(), input.size()), mac);
}

}  // namespace sstsp::crypto
