#include "crypto/hash_chain.h"

#include <cassert>
#include <cstring>

namespace sstsp::crypto {

Digest hash_once(const Digest& in) {
  return Sha256::hash(std::span<const std::uint8_t>(in.data(), in.size()));
}

Digest hash_times(Digest value, std::size_t times) {
  for (std::size_t i = 0; i < times; ++i) value = hash_once(value);
  return value;
}

Digest derive_seed(std::uint64_t scenario_seed, std::uint64_t node_id) {
  std::array<std::uint8_t, 24> material{};
  std::memcpy(material.data(), "seed:", 5);
  for (int i = 0; i < 8; ++i) {
    material[8 + i] = static_cast<std::uint8_t>(scenario_seed >> (8 * i));
    material[16 + i] = static_cast<std::uint8_t>(node_id >> (8 * i));
  }
  return Sha256::hash(
      std::span<const std::uint8_t>(material.data(), material.size()));
}

// ---------------------------------------------------------------- full

FullStorageTraversal::FullStorageTraversal(const ChainParams& params)
    : pos_(params.length == 0 ? kDone : params.length - 1) {
  elements_.reserve(params.length);
  Digest v = params.seed;
  if (params.length > 0) elements_.push_back(v);  // v_0
  for (std::size_t i = 1; i < params.length; ++i) {
    v = hash_once(v);
    ++hash_ops_;
    elements_.push_back(v);
  }
}

Digest FullStorageTraversal::next() {
  assert(!exhausted());
  const Digest out = elements_[pos_];
  pos_ = (pos_ == 0) ? kDone : pos_ - 1;
  return out;
}

// ----------------------------------------------------------- recompute

Digest RecomputeTraversal::next() {
  assert(!exhausted());
  const Digest out = hash_times(params_.seed, pos_);
  hash_ops_ += pos_;
  pos_ = (pos_ == 0) ? kDone : pos_ - 1;
  return out;
}

// -------------------------------------------------------------- fractal

FractalTraversal::FractalTraversal(const ChainParams& params)
    : pos_(params.length == 0 ? kDone : params.length - 1) {
  if (params.length > 0) {
    checkpoints_.push_back(Checkpoint{0, params.seed});
  }
}

void FractalTraversal::materialize() {
  // Invariant: checkpoints_ is non-empty, positions strictly ascend, and
  // every checkpoint position is <= pos_.  Walk from the top checkpoint to
  // pos_, dropping a new checkpoint at the midpoint of each remaining gap so
  // the stack depth stays logarithmic in the original gap.
  while (checkpoints_.back().pos < pos_) {
    const Checkpoint& top = checkpoints_.back();
    const std::size_t gap = pos_ - top.pos;
    const std::size_t jump = (gap + 1) / 2;  // at least 1
    Digest v = top.value;
    for (std::size_t i = 0; i < jump; ++i) {
      v = hash_once(v);
      ++hash_ops_;
    }
    checkpoints_.push_back(Checkpoint{top.pos + jump, v});
  }
}

Digest FractalTraversal::next() {
  assert(!exhausted());
  materialize();
  const Digest out = checkpoints_.back().value;
  pos_ = (pos_ == 0) ? kDone : pos_ - 1;
  // Checkpoints above the new position are spent.
  while (!checkpoints_.empty() && checkpoints_.back().pos > pos_ &&
         pos_ != kDone) {
    checkpoints_.pop_back();
  }
  if (pos_ == kDone) checkpoints_.clear();
  return out;
}

// -------------------------------------------------------- checkpointed

CheckpointedChain::CheckpointedChain(const ChainParams& params,
                                     std::size_t spacing)
    : params_(params), spacing_(spacing == 0 ? 1 : spacing) {
  Digest v = params_.seed;
  checkpoints_.push_back(v);  // v_0
  for (std::size_t i = 1; i <= params_.length; ++i) {
    v = hash_once(v);
    ++hash_ops_;
    if (i % spacing_ == 0) checkpoints_.push_back(v);
  }
  anchor_ = v;
}

Digest CheckpointedChain::element(std::size_t i) const {
  assert(i <= params_.length);
  if (i == params_.length) return anchor_;
  const std::size_t idx = i / spacing_;
  Digest v = checkpoints_[idx];
  const std::size_t steps = i - idx * spacing_;
  hash_ops_ += steps;
  return hash_times(v, steps);
}

}  // namespace sstsp::crypto
