#include "crypto/sha256.h"

#include <algorithm>
#include <cstring>

// x86 SHA extensions: compiled in whenever the compiler supports per-function
// target attributes, selected at runtime via CPUID so the same binary runs on
// machines without SHA-NI.  The accelerated path is bit-identical to the
// scalar one (FIPS 180-4 either way); tests/crypto_sha256_test exercises the
// known-answer vectors on whichever path the host machine dispatches to.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SSTSP_SHA_NI_POSSIBLE 1
#include <immintrin.h>
#endif

namespace sstsp::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

[[nodiscard]] constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

#if defined(SSTSP_SHA_NI_POSSIBLE)

/// One SHA-256 compression using the SHA-NI instructions.  Structure follows
/// the canonical Intel schedule: state held as two 128-bit lanes (ABEF/CDGH),
/// message quads advanced with sha256msg1/sha256msg2 while sha256rnds2
/// retires four rounds per pair of calls.  Round constants are loaded from
/// kRoundConstants (lane order matches the array order).
__attribute__((target("sha,ssse3,sse4.1"))) void process_block_shani(
    std::array<std::uint32_t, 8>& state, const std::uint8_t* block) {
  const auto* kptr = kRoundConstants.data();
  const auto k = [kptr](int i) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(kptr + i));
  };
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Load a..h and swizzle into the ABEF / CDGH lane layout.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data()));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state.data() + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);        // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);             // CDGH
  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  __m128i msg;
  // Rounds 0-3
  __m128i msg0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), kByteSwap);
  msg = _mm_add_epi32(msg0, k(0));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  __m128i msg1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)),
      kByteSwap);
  msg = _mm_add_epi32(msg1, k(4));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  __m128i msg2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)),
      kByteSwap);
  msg = _mm_add_epi32(msg2, k(8));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  __m128i msg3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)),
      kByteSwap);
  msg = _mm_add_epi32(msg3, k(12));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-51: steady-state schedule, message quads rotating through
  // msg0..msg3.
  __m128i* quads[4] = {&msg0, &msg1, &msg2, &msg3};
  for (int round = 16; round < 52; round += 4) {
    const int q = (round / 4) & 3;
    __m128i& cur = *quads[q];
    __m128i& nxt = *quads[(q + 1) & 3];
    __m128i& prv = *quads[(q + 3) & 3];
    msg = _mm_add_epi32(cur, k(round));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(cur, prv, 4);
    nxt = _mm_add_epi32(nxt, tmp);
    nxt = _mm_sha256msg2_epu32(nxt, cur);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    prv = _mm_sha256msg1_epu32(prv, cur);
  }

  // Rounds 52-55
  msg = _mm_add_epi32(msg1, k(52));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(msg2, k(56));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(msg3, k(60));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Swizzle ABEF/CDGH back to a..h and store.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data()), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state.data() + 4), state1);
}

[[nodiscard]] bool host_has_sha_ni() {
  return __builtin_cpu_supports("sha") != 0;
}

const bool kUseShaNi = host_has_sha_ni();

#endif  // SSTSP_SHA_NI_POSSIBLE

}  // namespace

void Sha256::reset() {
  state_ = kInitialState;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
#if defined(SSTSP_SHA_NI_POSSIBLE)
  if (kUseShaNi) {
    process_block_shani(state_, block);
    return;
  }
#endif
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_bytes.data(), len_bytes.size()));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  reset();
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest Sha256::hash(std::string_view s) {
  Sha256 ctx;
  ctx.update(s);
  return ctx.finish();
}

Digest128 truncate128(const Digest& d) {
  Digest128 out;
  std::copy_n(d.begin(), out.size(), out.begin());
  return out;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xF]);
  }
  return s;
}

}  // namespace sstsp::crypto
