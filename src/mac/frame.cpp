#include "mac/frame.h"

namespace sstsp::mac {

std::vector<std::uint8_t> serialize_unsecured_beacon(std::int64_t timestamp_us,
                                                     NodeId sender,
                                                     std::uint8_t level) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(13);
  const auto ts = static_cast<std::uint64_t>(timestamp_us);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(ts >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(sender >> (8 * i)));
  }
  bytes.push_back(level);
  return bytes;
}

}  // namespace sstsp::mac
