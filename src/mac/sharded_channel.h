// Sharded broadcast channel: the parallel kernel's medium.
//
// A ShardedWorld partitions the deployment into S contiguous regions and
// owns one ShardChannel per region.  Each shard holds only its own stations
// and runs on its own sim::Simulator, so the protocol hot path — backoff,
// carrier sense, transmit, delivery dispatch — touches no shared mutable
// state.  Shards interact exclusively at window barriers driven by
// sim::ShardExecutor:
//
//   * transmit() appends a local transmission record, posts announcement
//     copies into per-target outboxes, and schedules a finish-marker event
//     at the frame's end in the shard's own queue.  The marker keeps the
//     global t_min from jumping past the frame's end, which is what makes
//     the deferred evaluation below exact.
//   * exchange (serial, per window): the world drains every outbox in
//     shard-index order, appending announcements to the target shards.
//   * settle (parallel, per shard per window): each shard evaluates every
//     known transmission whose end lies inside the closed window — in
//     (end, tx id) order — against its OWN stations only: range check,
//     half-duplex, per-receiver interference, PER draw, latency draw,
//     delivery scheduling on the shard's simulator.
//   * commit (serial, per window): per-receiver-shard corruption verdicts
//     are OR-ed across shards so collided_transmissions counts each
//     transmission once, exactly like the single-kernel channel.
//
// Exactness: with lookahead L = min(cca_time, rx_latency_min), a remote
// transmission starting inside the current window is detectable by carrier
// sense only from start + prop + cca >= E_k, and delivers only from
// end + prop + rx_latency >= E_k — both beyond the window's open end — so
// deferring its visibility to the barrier changes nothing any station can
// observe.  DESIGN.md §12 carries the full argument and the two documented
// deviations from mac::Channel (identity-keyed RNG draws, two-deep
// half-duplex history).
//
// Determinism: every cross-shard draw is keyed by (tx id, receiver node id)
// off the shard simulator's root RNG — never by thread or arrival order —
// and tx ids are (sender node id, per-sender sequence), so results are
// bit-identical for any shard and thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mac/medium.h"
#include "sim/simulator.h"

namespace sstsp::obs {
class Instruments;
}  // namespace sstsp::obs

namespace sstsp::mac {

class ShardedWorld;

class ShardChannel final : public Medium {
 public:
  ShardChannel(ShardedWorld& world, int shard, sim::Simulator& sim,
               const PhyParams& phy);

  /// Registers the next station of this shard.  Stations must be added in
  /// ascending global-node-id order across the whole world (the runner
  /// builds them that way); the world's partition supplies the id.
  std::size_t add_station(Position pos, RxHandler handler) override;

  void set_listening(std::size_t idx, bool listening) override;

  std::uint64_t transmit(std::size_t idx, Frame frame,
                         sim::SimTime duration) override;

  [[nodiscard]] bool would_detect_busy(std::size_t idx,
                                       sim::SimTime at) const override;

  /// Per-shard instruments (delivery-latency recording); may be nullptr.
  void set_instruments(obs::Instruments* instruments) {
    instruments_ = instruments;
  }

  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }

  // Deterministic load counters (virtual-time-derived, safe to publish
  // under the bit-identity contract).
  [[nodiscard]] std::uint64_t announcements_sent() const {
    return announcements_sent_;
  }
  [[nodiscard]] std::size_t peak_tx_records() const { return peak_txs_; }

 private:
  friend class ShardedWorld;

  /// One past transmission window of a local station; two-deep history so
  /// the barrier-deferred half-duplex check still sees the transmission
  /// that was current at the frame's end even if the station has started
  /// another one later in the same window.
  struct TxWin {
    sim::SimTime start{sim::SimTime::never()};
    sim::SimTime end{sim::SimTime::zero()};
  };

  struct LocalStation {
    NodeId global;
    Position pos;
    RxHandler handler;
    bool listening{true};
    std::uint32_t tx_seq{0};
    TxWin hist[2];  ///< [0] = most recent transmission
  };

  /// A transmission this shard knows about: its own, or an announcement
  /// committed at a barrier.  Carries everything evaluation needs, so
  /// remote lookups never happen.
  struct TxRec {
    std::uint64_t id{0};
    NodeId sender{kNoNode};
    Position sender_pos;
    sim::SimTime start;
    sim::SimTime end;
    std::shared_ptr<const Frame> frame;
    bool evaluated{false};
  };

  struct Announcement {
    int target;
    TxRec rec;
  };

  /// Barrier hooks, driven by the world.
  void accept(const TxRec& rec);
  void settle(sim::SimTime window_end);
  void evaluate(const TxRec& tx);
  void prune(sim::SimTime now);

  void build_grid();
  /// Local stations in the 3x3 neighbourhood of `pos`, ascending local
  /// index (== ascending global id; the partition preserves order).
  void local_candidates(const Position& pos) const;

  ShardedWorld& world_;
  int shard_;
  sim::Simulator& sim_;
  std::vector<LocalStation> stations_;
  std::deque<TxRec> txs_;
  std::vector<Announcement> outbox_;  ///< drained serially at exchange
  /// (tx id, any-local-receiver-corrupted) for this window's evaluations;
  /// drained serially at commit.
  std::vector<std::pair<std::uint64_t, bool>> eval_results_;
  obs::Instruments* instruments_{nullptr};

  // Uniform grid over this shard's stations only (cell = radio range,
  // locally-fitted bounds).  Queries clamp into the local bounds exactly
  // like mac::Channel's grid; the exact distance check downstream makes a
  // remote sender's clamped query correct — candidates are a superset of
  // the in-range stations.
  struct Grid {
    bool built{false};
    double cell_m{0.0};
    double min_x{0.0};
    double min_y{0.0};
    int nx{0};
    int ny{0};
    std::vector<std::vector<std::uint32_t>> cells;
  };
  Grid grid_;
  mutable std::vector<std::uint32_t> candidates_;  // grid query scratch
  std::vector<TxRec*> due_;                        // settle scratch
  std::vector<int> targets_;                       // transmit scratch

  std::uint64_t announcements_sent_{0};
  std::size_t peak_txs_{0};
};

/// Coordinator: owns the shards, the spatial partition, and the barrier
/// protocol.  Not itself a Medium — stations attach to their shard.
class ShardedWorld {
 public:
  /// `sims` must outlive the world: one simulator per shard, all seeded
  /// identically (sim::ShardExecutor guarantees both).
  ShardedWorld(const PhyParams& phy, std::vector<sim::Simulator*> sims);
  ~ShardedWorld();

  ShardedWorld(const ShardedWorld&) = delete;
  ShardedWorld& operator=(const ShardedWorld&) = delete;

  /// Partitions `positions` (indexed by global node id) into contiguous
  /// shard regions balanced by station count: grid-column strips when a
  /// finite radio range is configured, node-id blocks otherwise.  Must run
  /// before any add_station.
  void partition(const std::vector<Position>& positions);

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] int shard_of(std::size_t global) const {
    return shard_of_[global];
  }
  [[nodiscard]] ShardChannel& channel(int shard) { return *shards_[shard]; }

  /// Conservative lookahead this world's physics supports (min of CCA
  /// latency and minimum receive latency); pass to sim::ShardExecutor.
  [[nodiscard]] sim::SimTime lookahead() const;

  // Barrier protocol, in per-window order (wire into ShardExecutor::run).
  void exchange(sim::SimTime window_end);
  void settle(int shard, sim::SimTime window_end);
  void commit(sim::SimTime window_end);

  /// World-wide channel stats: per-shard counters summed, plus the
  /// commit-phase collision count.
  [[nodiscard]] ChannelStats stats() const;

  [[nodiscard]] std::uint64_t announcements_total() const;

  /// Shards whose stations can hear a node at this x coordinate — the
  /// announce fan-out set.  The runner keys per-shard KeyDirectory
  /// registration off this (NOT off home-shard adjacency: when shards
  /// outnumber grid columns, neighbouring columns can map to
  /// non-consecutive shard indices).
  void audible_shards(double x_m, std::vector<int>& out) const {
    announce_targets(x_m, out);
  }

 private:
  friend class ShardChannel;

  /// Shards owning any grid column in [cx-1, cx+1]; all shards in the
  /// single-hop (radio_range_m == 0) configuration.
  void announce_targets(double x_m, std::vector<int>& out) const;
  [[nodiscard]] NodeId next_global_id(int shard) const;

  PhyParams phy_;
  std::vector<sim::Simulator*> sims_;
  std::vector<std::unique_ptr<ShardChannel>> shards_;
  std::vector<int> shard_of_;  ///< global node id -> shard
  /// Per-shard members in ascending global id (add_station consumes these).
  std::vector<std::vector<NodeId>> members_;

  // Column partition (finite range only).
  bool spatial_{false};
  double cell_m_{0.0};
  double min_x_{0.0};
  int ncols_{0};
  std::vector<int> col_shard_;  ///< grid column -> owning shard

  std::uint64_t collided_{0};
  /// commit scratch: this window's (tx id, corrupted) pairs over all shards.
  std::vector<std::pair<std::uint64_t, bool>> verdicts_;
};

}  // namespace sstsp::mac
