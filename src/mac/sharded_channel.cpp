#include "mac/sharded_channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/instruments.h"

namespace sstsp::mac {

ShardChannel::ShardChannel(ShardedWorld& world, int shard,
                           sim::Simulator& sim, const PhyParams& phy)
    : Medium(phy), world_(world), shard_(shard), sim_(sim) {}

std::size_t ShardChannel::add_station(Position pos, RxHandler handler) {
  LocalStation st;
  st.global = world_.next_global_id(shard_);
  st.pos = pos;
  st.handler = std::move(handler);
  stations_.push_back(std::move(st));
  grid_.built = false;
  return stations_.size() - 1;
}

void ShardChannel::set_listening(std::size_t idx, bool listening) {
  stations_[idx].listening = listening;
}

void ShardChannel::prune(sim::SimTime now) {
  // Same retention horizon as mac::Channel, plus the evaluated flag: a
  // record may be due for barrier evaluation later than its own end, and an
  // unevaluated record must also pin every record overlapping it (any tx
  // overlapping a prunable one ended early enough to be evaluated already —
  // the window span is microseconds, the horizon a millisecond).
  const sim::SimTime horizon = now - phy_.ifs_guard - sim::SimTime::from_ms(1);
  while (!txs_.empty() && txs_.front().end < horizon &&
         txs_.front().evaluated) {
    txs_.pop_front();
  }
}

std::uint64_t ShardChannel::transmit(std::size_t idx, Frame frame,
                                     sim::SimTime duration) {
  const sim::SimTime now = sim_.now();
  prune(now);

  LocalStation& st = stations_[idx];
  // Identity-keyed transmission id: (sender node id, per-sender sequence).
  // Unlike mac::Channel's global counter this never depends on the global
  // interleaving of transmit() calls, so it is stable across shard layouts.
  const std::uint64_t id =
      (static_cast<std::uint64_t>(st.global) << 24) | st.tx_seq++;
  frame.trace_id = id;

  TxRec rec;
  rec.id = id;
  rec.sender = st.global;
  rec.sender_pos = st.pos;
  rec.start = now;
  rec.end = now + duration;
  rec.frame = std::make_shared<const Frame>(std::move(frame));

  ++stats_.transmissions;
  stats_.bytes_on_air += rec.frame->air_bytes;
  st.hist[1] = st.hist[0];
  st.hist[0] = TxWin{now, rec.end};

  world_.announce_targets(st.pos.x_m, targets_);
  for (const int t : targets_) {
    if (t == shard_) continue;
    outbox_.push_back(Announcement{t, rec});
    ++announcements_sent_;
  }

  // Finish marker: a no-op event at the frame's end.  It pins the global
  // t_min at or below `end` until the window containing the end has run, so
  // the barrier that evaluates this transmission always lies at a window
  // edge E > end — and every delivery it schedules (>= end + rx latency
  // >= E by the lookahead bound) still lands in this shard's future.
  sim_.at(rec.end, [] {});

  txs_.push_back(std::move(rec));
  peak_txs_ = std::max(peak_txs_, txs_.size());
  return id;
}

bool ShardChannel::would_detect_busy(std::size_t idx, sim::SimTime at) const {
  const LocalStation& me = stations_[idx];
  const bool finite_range = phy_.radio_range_m > 0.0;
  for (const TxRec& tx : txs_) {
    if (tx.sender == me.global) continue;
    const double d = distance_m(tx.sender_pos, me.pos);
    if (finite_range && d > phy_.radio_range_m) continue;
    const sim::SimTime prop = propagation_from_distance(d);
    const sim::SimTime detectable_from = tx.start + prop + phy_.cca_time;
    const sim::SimTime busy_until = tx.end + prop + phy_.ifs_guard;
    if (at >= detectable_from && at <= busy_until) return true;
  }
  return false;
}

void ShardChannel::accept(const TxRec& rec) {
  txs_.push_back(rec);
  peak_txs_ = std::max(peak_txs_, txs_.size());
}

void ShardChannel::settle(sim::SimTime window_end) {
  due_.clear();
  for (TxRec& tx : txs_) {
    if (!tx.evaluated && tx.end < window_end) due_.push_back(&tx);
  }
  // (end, tx id) order: layout-independent, and the order the single
  // kernel's finish events would fire in up to same-instant ties.
  std::sort(due_.begin(), due_.end(), [](const TxRec* a, const TxRec* b) {
    if (a->end != b->end) return a->end < b->end;
    return a->id < b->id;
  });
  for (TxRec* tx : due_) {
    tx->evaluated = true;
    evaluate(*tx);
  }
  prune(window_end);
}

void ShardChannel::evaluate(const TxRec& tx) {
  const double nominal_us = nominal_delay_us(tx.end - tx.start);
  const bool finite_range = phy_.radio_range_m > 0.0;
  bool corrupted_any = false;

  auto consider_receiver = [&](std::size_t s) {
    LocalStation& rx = stations_[s];
    if (rx.global == tx.sender) return;
    if (!rx.listening) return;
    const double d = distance_m(tx.sender_pos, rx.pos);
    if (finite_range && d > phy_.radio_range_m) return;
    // Half duplex, evaluated after the fact: of the receiver's last two
    // transmissions, the one current at this frame's end decides (the
    // receiver cannot have started two transmissions inside one lookahead
    // window — frames are tens of microseconds, the window is three).
    const TxWin& h = rx.hist[0].start < tx.end ? rx.hist[0] : rx.hist[1];
    if (h.start < tx.end && h.end > tx.start) {
      ++stats_.half_duplex_suppressed;
      return;
    }
    // Per-receiver interference over every known overlapping transmission;
    // the barrier exchange guarantees the set is complete by now.
    bool corrupted = false;
    for (const TxRec& other : txs_) {
      if (other.id == tx.id) continue;
      if (other.start >= tx.end || other.end <= tx.start) continue;
      if (finite_range &&
          distance_m(other.sender_pos, rx.pos) > phy_.radio_range_m) {
        continue;
      }
      corrupted = true;
      break;
    }
    if (corrupted) {
      corrupted_any = true;
      return;
    }
    // Identity-keyed draws: one substream per (transmission, receiver)
    // pair, derived from the shard simulator's root RNG (identical in
    // every shard).  Draw order within the pair matches mac::Channel —
    // PER verdict, then receive latency — so a degenerate configuration
    // (PER = 0, fixed latency) reproduces its deliveries exactly.
    sim::Rng draw = sim_.substream(
        "deliv", tx.id ^ (static_cast<std::uint64_t>(rx.global) *
                          0x9E3779B97F4A7C15ULL));
    if (draw.bernoulli(phy_.packet_error_rate)) {
      ++stats_.per_drops;
      return;
    }
    const sim::SimTime prop = propagation_from_distance(d);
    const sim::SimTime rx_latency = sim::SimTime::from_us_double(draw.uniform(
        phy_.rx_latency_min.to_us(), phy_.rx_latency_max.to_us()));

    RxInfo info;
    info.delivered = tx.end + prop + rx_latency;
    info.nominal_delay_us = nominal_us;
    info.tx_start = tx.start;
    ++stats_.deliveries;
    if (instruments_ != nullptr) {
      instruments_->on_delivery((info.delivered - tx.start).to_us());
    }
    std::shared_ptr<const Frame> frame = tx.frame;
    sim_.at(info.delivered, [this, s, frame, info] {
      if (stations_[s].listening) stations_[s].handler(*frame, info);
    });
  };

  if (finite_range) {
    if (!grid_.built) build_grid();
    local_candidates(tx.sender_pos);
    for (const std::uint32_t s : candidates_) consider_receiver(s);
  } else {
    for (std::size_t s = 0; s < stations_.size(); ++s) consider_receiver(s);
  }
  eval_results_.emplace_back(tx.id, corrupted_any);
}

void ShardChannel::build_grid() {
  grid_.cell_m = phy_.radio_range_m;
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;
  bool first = true;
  for (const LocalStation& st : stations_) {
    if (first) {
      min_x = max_x = st.pos.x_m;
      min_y = max_y = st.pos.y_m;
      first = false;
    } else {
      min_x = std::min(min_x, st.pos.x_m);
      max_x = std::max(max_x, st.pos.x_m);
      min_y = std::min(min_y, st.pos.y_m);
      max_y = std::max(max_y, st.pos.y_m);
    }
  }
  grid_.min_x = min_x;
  grid_.min_y = min_y;
  grid_.nx = std::max(
      1, static_cast<int>(std::floor((max_x - min_x) / grid_.cell_m)) + 1);
  grid_.ny = std::max(
      1, static_cast<int>(std::floor((max_y - min_y) / grid_.cell_m)) + 1);
  grid_.cells.assign(static_cast<std::size_t>(grid_.nx) *
                         static_cast<std::size_t>(grid_.ny),
                     {});
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const Position& p = stations_[i].pos;
    const int cx = std::clamp(
        static_cast<int>(std::floor((p.x_m - min_x) / grid_.cell_m)), 0,
        grid_.nx - 1);
    const int cy = std::clamp(
        static_cast<int>(std::floor((p.y_m - min_y) / grid_.cell_m)), 0,
        grid_.ny - 1);
    grid_.cells[static_cast<std::size_t>(cy) *
                    static_cast<std::size_t>(grid_.nx) +
                static_cast<std::size_t>(cx)]
        .push_back(static_cast<std::uint32_t>(i));
  }
  grid_.built = true;
}

void ShardChannel::local_candidates(const Position& pos) const {
  candidates_.clear();
  const int cx = std::clamp(
      static_cast<int>(std::floor((pos.x_m - grid_.min_x) / grid_.cell_m)), 0,
      grid_.nx - 1);
  const int cy = std::clamp(
      static_cast<int>(std::floor((pos.y_m - grid_.min_y) / grid_.cell_m)), 0,
      grid_.ny - 1);
  for (int y = std::max(0, cy - 1); y <= std::min(grid_.ny - 1, cy + 1); ++y) {
    for (int x = std::max(0, cx - 1); x <= std::min(grid_.nx - 1, cx + 1);
         ++x) {
      const auto& cell = grid_.cells[static_cast<std::size_t>(y) *
                                         static_cast<std::size_t>(grid_.nx) +
                                     static_cast<std::size_t>(x)];
      candidates_.insert(candidates_.end(), cell.begin(), cell.end());
    }
  }
  // Ascending local index == ascending global id (the partition hands each
  // shard its members in order), mirroring mac::Channel's visiting order.
  std::sort(candidates_.begin(), candidates_.end());
}

ShardedWorld::ShardedWorld(const PhyParams& phy,
                           std::vector<sim::Simulator*> sims)
    : phy_(phy), sims_(std::move(sims)) {
  shards_.reserve(sims_.size());
  for (std::size_t s = 0; s < sims_.size(); ++s) {
    shards_.push_back(std::make_unique<ShardChannel>(
        *this, static_cast<int>(s), *sims_[s], phy_));
  }
}

ShardedWorld::~ShardedWorld() = default;

void ShardedWorld::partition(const std::vector<Position>& positions) {
  const std::size_t n = positions.size();
  const int num_shards = shard_count();
  shard_of_.assign(n, 0);
  members_.assign(static_cast<std::size_t>(num_shards), {});
  spatial_ = phy_.radio_range_m > 0.0 && n > 0;
  if (spatial_) {
    cell_m_ = phy_.radio_range_m;
    double min_x = positions[0].x_m;
    double max_x = positions[0].x_m;
    for (const Position& p : positions) {
      min_x = std::min(min_x, p.x_m);
      max_x = std::max(max_x, p.x_m);
    }
    min_x_ = min_x;
    ncols_ = std::max(
        1, static_cast<int>(std::floor((max_x - min_x) / cell_m_)) + 1);
    std::vector<std::size_t> col_count(static_cast<std::size_t>(ncols_), 0);
    std::vector<int> col_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int cx = std::clamp(
          static_cast<int>(std::floor((positions[i].x_m - min_x) / cell_m_)),
          0, ncols_ - 1);
      col_of[i] = cx;
      ++col_count[static_cast<std::size_t>(cx)];
    }
    // Contiguous column strips balanced by station count: close a strip
    // once the running total reaches the shard's pro-rata quota.  Shards
    // can own zero columns when there are fewer columns than shards.
    col_shard_.assign(static_cast<std::size_t>(ncols_), 0);
    const double per_shard =
        static_cast<double>(n) / static_cast<double>(num_shards);
    int shard = 0;
    std::size_t cum = 0;
    for (int c = 0; c < ncols_; ++c) {
      while (shard < num_shards - 1 &&
             static_cast<double>(cum) >=
                 per_shard * static_cast<double>(shard + 1)) {
        ++shard;
      }
      col_shard_[static_cast<std::size_t>(c)] = shard;
      cum += col_count[static_cast<std::size_t>(c)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      shard_of_[i] = col_shard_[static_cast<std::size_t>(col_of[i])];
    }
  } else {
    // Single-hop world: no geometry to exploit, contiguous id blocks.
    for (std::size_t i = 0; i < n; ++i) {
      shard_of_[i] = static_cast<int>(
          (i * static_cast<std::size_t>(num_shards)) / std::max<std::size_t>(n, 1));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    members_[static_cast<std::size_t>(shard_of_[i])].push_back(
        static_cast<NodeId>(i));
  }
}

NodeId ShardedWorld::next_global_id(int shard) const {
  const auto& m = members_[static_cast<std::size_t>(shard)];
  const std::size_t next = shards_[static_cast<std::size_t>(shard)]
                               ->station_count();
  assert(next < m.size() && "add_station order disagrees with partition");
  return m[next];
}

sim::SimTime ShardedWorld::lookahead() const {
  return std::min(phy_.cca_time, phy_.rx_latency_min);
}

void ShardedWorld::announce_targets(double x_m, std::vector<int>& out) const {
  out.clear();
  if (!spatial_) {
    for (int s = 0; s < shard_count(); ++s) out.push_back(s);
    return;
  }
  const int cx = std::clamp(
      static_cast<int>(std::floor((x_m - min_x_) / cell_m_)), 0, ncols_ - 1);
  for (int c = std::max(0, cx - 1); c <= std::min(ncols_ - 1, cx + 1); ++c) {
    const int s = col_shard_[static_cast<std::size_t>(c)];
    // col_shard_ is non-decreasing, so duplicates are adjacent.
    if (out.empty() || out.back() != s) out.push_back(s);
  }
}

void ShardedWorld::exchange(sim::SimTime /*window_end*/) {
  // Shard-index order, outbox entries in their local (time, call) order: a
  // deterministic, layout-stable commit order for every announcement.
  for (const auto& sh : shards_) {
    for (const ShardChannel::Announcement& a : sh->outbox_) {
      shards_[static_cast<std::size_t>(a.target)]->accept(a.rec);
    }
    sh->outbox_.clear();
  }
}

void ShardedWorld::settle(int shard, sim::SimTime window_end) {
  shards_[static_cast<std::size_t>(shard)]->settle(window_end);
}

void ShardedWorld::commit(sim::SimTime /*window_end*/) {
  verdicts_.clear();
  for (const auto& sh : shards_) {
    verdicts_.insert(verdicts_.end(), sh->eval_results_.begin(),
                     sh->eval_results_.end());
    sh->eval_results_.clear();
  }
  if (verdicts_.empty()) return;
  // A transmission's receivers can span shards; OR the per-shard verdicts
  // so a collision increments the counter once, like the single kernel.
  std::sort(verdicts_.begin(), verdicts_.end());
  for (std::size_t i = 0; i < verdicts_.size();) {
    std::size_t j = i;
    bool corrupted = false;
    while (j < verdicts_.size() && verdicts_[j].first == verdicts_[i].first) {
      corrupted = corrupted || verdicts_[j].second;
      ++j;
    }
    if (corrupted) ++collided_;
    i = j;
  }
}

ChannelStats ShardedWorld::stats() const {
  ChannelStats agg;
  for (const auto& sh : shards_) {
    const ChannelStats& s = sh->stats();
    agg.transmissions += s.transmissions;
    agg.deliveries += s.deliveries;
    agg.per_drops += s.per_drops;
    agg.half_duplex_suppressed += s.half_duplex_suppressed;
    agg.bytes_on_air += s.bytes_on_air;
  }
  agg.collided_transmissions = collided_;
  return agg;
}

std::uint64_t ShardedWorld::announcements_total() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->announcements_sent();
  return total;
}

}  // namespace sstsp::mac
