// Beacon frame representations.
//
// Frames travel through the simulated channel as structured values; the
// byte-level encodings below exist so that (a) the µTESLA MAC is computed
// over a concrete octet string exactly as a deployment would, and (b) frame
// sizes can be accounted against the paper's 56-byte / 92-byte figures.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "crypto/sha256.h"
#include "mac/phy_params.h"

namespace sstsp::mac {

/// Plain TSF beacon: the timestamp is the sender's TSF register latched at
/// the start of transmission (whole microseconds, as per the standard).
struct TsfBeaconBody {
  std::int64_t timestamp_us{0};
};

/// Secured SSTSP beacon: <B, j, HMAC_{K_j}(B, j), K_{j-1}>  (paper §3.3).
/// B consists of the adjusted-clock timestamp, the sender identity, and —
/// for the multi-hop extension — the sender's relay level (0 for the
/// reference; single-hop SSTSP always emits level 0).
struct SstspBeaconBody {
  std::int64_t timestamp_us{0};        ///< adjusted clock at tx start
  std::int64_t interval{0};            ///< j
  std::uint8_t level{0};               ///< hop distance from the reference
  crypto::Digest128 mac{};             ///< HMAC_{K_j}(B, j), truncated
  crypto::Digest disclosed_key{};      ///< K_{j-1} = v_{n-j+1}
};

struct Frame {
  NodeId sender{kNoNode};
  std::variant<TsfBeaconBody, SstspBeaconBody> body;
  std::uint32_t air_bytes{0};  ///< on-air size, for traffic accounting
  /// Broadcast-domain tag (the BSSID stand-in for multi-domain scenarios):
  /// receivers drop frames from foreign domains before protocol processing,
  /// exactly as a NIC filters on BSSID.  The PHY is shared — cross-domain
  /// frames still occupy the medium and collide.  0 is the default single
  /// domain; the cluster layer uses cluster indices and `0x80 | cluster`
  /// for the gateway bridge plane (see cluster/cluster_config.h).
  std::uint8_t domain{0};
  /// Causal lifecycle ID, assigned by the channel at transmission start
  /// (its per-transmission counter) and carried to every receiver.  Not an
  /// on-air field: it is simulation bookkeeping that lets observability
  /// correlate a beacon's tx with its per-receiver rx/verify/adjust events.
  std::uint64_t trace_id{0};

  [[nodiscard]] bool is_tsf() const {
    return std::holds_alternative<TsfBeaconBody>(body);
  }
  [[nodiscard]] bool is_sstsp() const {
    return std::holds_alternative<SstspBeaconBody>(body);
  }
  [[nodiscard]] const TsfBeaconBody& tsf() const {
    return std::get<TsfBeaconBody>(body);
  }
  [[nodiscard]] const SstspBeaconBody& sstsp() const {
    return std::get<SstspBeaconBody>(body);
  }
};

/// Serializes the unsecured beacon content B = (timestamp, sender, level) —
/// the exact octets the µTESLA MAC covers.  Shared by signer and verifier.
[[nodiscard]] std::vector<std::uint8_t> serialize_unsecured_beacon(
    std::int64_t timestamp_us, NodeId sender, std::uint8_t level = 0);

}  // namespace sstsp::mac
