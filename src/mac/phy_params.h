// IEEE 802.11a OFDM PHY timing constants and evaluation parameters.
//
// Values follow the paper's §5 setup: OFDM at 54 Mbps (802.11a timing,
// aSlotTime = 9 us), BP = 0.1 s, beacon generation window of w+1 = 31 slots,
// TSF beacons occupying 4 slots on air and SSTSP beacons 7 slots, and a
// packet error rate of 0.01 %.
#pragma once

#include <cstdint>

#include "sim/time_types.h"

namespace sstsp::mac {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

struct PhyParams {
  /// aSlotTime for the OFDM PHY.
  sim::SimTime slot_time = sim::SimTime::from_us(9);

  /// Beacon period (paper: "typical value is 0.1 s").
  sim::SimTime beacon_period = sim::SimTime::from_ms(100);

  /// Beacon generation window parameter: random delay in [0, w] slots.
  int contention_window = 30;

  /// On-air beacon durations (paper §5: 4 slots TSF, 7 slots SSTSP).
  sim::SimTime tsf_beacon_duration = sim::SimTime::from_us(36);
  sim::SimTime sstsp_beacon_duration = sim::SimTime::from_us(63);

  /// Clear-channel-assessment latency: a transmission that started less
  /// than this long before a station's backoff expiry cannot be detected,
  /// so the station transmits anyway and collides (802.11a: aCCATime < 4 us).
  sim::SimTime cca_time = sim::SimTime::from_us(4);

  /// After a frame ends the medium is treated as busy for one more DIFS
  /// before a deferred station may transmit (we fold rx/tx turnaround in).
  sim::SimTime ifs_guard = sim::SimTime::from_us(34);

  /// Per-reception frame loss probability (paper: 0.01 %).
  double packet_error_rate = 1e-4;

  /// Receive-chain latency: actual delay between frame end on air and the
  /// MAC timestamping point, uniform in [min, max]; receivers compensate
  /// with the midpoint.  The +/-1 us residual, plus 1 us timestamp
  /// quantization and propagation variance, forms the paper's epsilon
  /// (< 5 us); because the (k, b) solver extrapolates a two-beacon rate
  /// estimate over m+1 BPs, the steady-state error is a small multiple of
  /// this jitter (paper Table 1: ~6 us at m >= 3).
  sim::SimTime rx_latency_min = sim::SimTime::from_us(3);
  sim::SimTime rx_latency_max = sim::SimTime::from_us(5);

  /// Deployment disc radius for node placement; propagation = distance / c.
  double placement_radius_m = 50.0;

  /// Radio range: stations further apart than this neither receive nor
  /// carrier-sense each other.  <= 0 means unlimited (the paper's IBSS
  /// setting: all nodes in each other's transmission range).  Finite
  /// ranges enable the multi-hop extension (src/multihop/).
  double radio_range_m = 0.0;

  /// On-air frame sizes, for traffic accounting only (paper §3.4: 56-byte
  /// TSF beacon incl. 24-byte preamble, 92-byte secured SSTSP beacon).
  std::uint32_t tsf_beacon_bytes = 56;
  std::uint32_t sstsp_beacon_bytes = 92;
};

/// Speed of light in metres per microsecond.
inline constexpr double kSpeedOfLightMPerUs = 299.792458;

struct Position {
  double x_m{0.0};
  double y_m{0.0};
};

[[nodiscard]] double distance_m(const Position& a, const Position& b);

/// One-way propagation delay between two positions.
[[nodiscard]] sim::SimTime propagation_delay(const Position& a,
                                             const Position& b);

}  // namespace sstsp::mac
