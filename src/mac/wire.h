// On-air frame encoding/decoding.
//
// The simulator moves frames as structured values, but the byte layouts
// below are what the paper's §3.4 size accounting (56 B TSF beacon, 92 B
// secured SSTSP beacon) refers to, and a deployment would ship.  Encoding
// and decoding round-trip exactly; decoding validates length and magic and
// never reads out of bounds (fed with truncated/corrupted inputs in
// tests/mac_wire_test.cpp).
//
// TSF beacon (56 bytes): 24 B PLCP preamble+header surrogate, 2 B magic,
//   1 B version/type, 8 B timestamp, 4 B sender, 17 B fixed beacon fields
//   surrogate (capability/interval/IBSS parameter set), zero padded.
//
// SSTSP secured beacon (96 bytes): 24 B preamble surrogate, 2 B magic,
//   1 B version/type, 8 B timestamp, 4 B sender, 1 B level, 8 B interval,
//   16 B truncated HMAC, 32 B disclosed key.  The paper counts 92 B
//   because it carries 128-bit chain elements and a 4-byte interval index
//   (56 + 16 + 16 + 4); we ship the full 256-bit SHA-256 chain element, an
//   8-byte interval, and the multi-hop level byte: 92 + 16 - 13 + 1 = 96.
//   (The figure benches keep the paper's 92 B in their air-time accounting
//   for comparability; this module is the deployable layout.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mac/frame.h"

namespace sstsp::mac {

inline constexpr std::size_t kTsfWireBytes = 56;
inline constexpr std::size_t kSstspWireBytes = 96;

/// Encodes a frame into its on-air byte layout.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes an on-air byte string; nullopt for anything malformed (wrong
/// length, bad magic, unknown type).
[[nodiscard]] std::optional<Frame> decode_frame(
    std::span<const std::uint8_t> bytes);

}  // namespace sstsp::mac
