#include "mac/wire.h"

#include <algorithm>
#include <cstring>

namespace sstsp::mac {

namespace {

constexpr std::size_t kPreambleBytes = 24;  // PLCP preamble+header surrogate
constexpr std::uint8_t kMagic0 = 0x53;      // 'S'
constexpr std::uint8_t kMagic1 = 0x54;      // 'T'
constexpr std::uint8_t kTypeTsf = 0x01;
constexpr std::uint8_t kTypeSstsp = 0x02;

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint64_t get_u64(std::span<const std::uint8_t> in,
                                    std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  return v;
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> in,
                                    std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.assign(kPreambleBytes, 0x00);  // preamble surrogate
  out.push_back(kMagic0);
  out.push_back(kMagic1);

  if (frame.is_tsf()) {
    out.push_back(kTypeTsf);
    put_u64(out, static_cast<std::uint64_t>(frame.tsf().timestamp_us));
    put_u32(out, frame.sender);
    out.resize(kTsfWireBytes, 0x00);  // fixed beacon fields surrogate
    return out;
  }

  const SstspBeaconBody& b = frame.sstsp();
  out.push_back(kTypeSstsp);
  put_u64(out, static_cast<std::uint64_t>(b.timestamp_us));
  put_u32(out, frame.sender);
  out.push_back(b.level);
  put_u64(out, static_cast<std::uint64_t>(b.interval));
  out.insert(out.end(), b.mac.begin(), b.mac.end());
  out.insert(out.end(), b.disclosed_key.begin(), b.disclosed_key.end());
  // 24+2+1+8+4+1+8+16+32 = 96 exactly.
  return out;
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kTsfWireBytes && bytes.size() != kSstspWireBytes) {
    return std::nullopt;
  }
  if (bytes[kPreambleBytes] != kMagic0 ||
      bytes[kPreambleBytes + 1] != kMagic1) {
    return std::nullopt;
  }
  const std::uint8_t type = bytes[kPreambleBytes + 2];
  std::size_t at = kPreambleBytes + 3;

  Frame frame;
  if (type == kTypeTsf && bytes.size() == kTsfWireBytes) {
    TsfBeaconBody body;
    body.timestamp_us = static_cast<std::int64_t>(get_u64(bytes, at));
    at += 8;
    frame.sender = get_u32(bytes, at);
    frame.body = body;
    frame.air_bytes = kTsfWireBytes;
    return frame;
  }
  if (type == kTypeSstsp && bytes.size() == kSstspWireBytes) {
    SstspBeaconBody body;
    body.timestamp_us = static_cast<std::int64_t>(get_u64(bytes, at));
    at += 8;
    frame.sender = get_u32(bytes, at);
    at += 4;
    body.level = bytes[at];
    at += 1;
    body.interval = static_cast<std::int64_t>(get_u64(bytes, at));
    at += 8;
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                body.mac.size(), body.mac.begin());
    at += body.mac.size();
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                body.disclosed_key.size(), body.disclosed_key.begin());
    frame.body = body;
    frame.air_bytes = kSstspWireBytes;
    return frame;
  }
  return std::nullopt;
}

}  // namespace sstsp::mac
