#include "mac/phy_params.h"

#include <cmath>

namespace sstsp::mac {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

sim::SimTime propagation_delay(const Position& a, const Position& b) {
  return sim::SimTime::from_us_double(distance_m(a, b) /
                                      kSpeedOfLightMPerUs);
}

}  // namespace sstsp::mac
