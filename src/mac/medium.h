// Medium: the radio interface a station programs against.
//
// Two implementations exist.  mac::Channel is the original single-threaded
// broadcast channel: one instance owns every station and runs on the one
// simulator of the run.  mac::ShardChannel (sharded_channel.h) is one shard
// of the parallel kernel: it owns only the stations placed in its region of
// the deployment and cooperates with its sibling shards through barrier-
// committed transmission announcements.  Protocol code sees neither — a
// proto::Station exposes exactly this surface, so the same protocol binary
// runs on either kernel.
//
// The interface is deliberately the *station-facing* slice of the channel:
// runner-facing wiring (instruments, profilers, fault injectors, trace-id
// seeding) stays on the concrete classes, because each kernel wires those
// differently.
#pragma once

#include <cstdint>
#include <functional>

#include "mac/frame.h"
#include "mac/phy_params.h"
#include "sim/time_types.h"

namespace sstsp::mac {

/// What a receiver's MAC learns about a frame, besides its content.
struct RxInfo {
  sim::SimTime delivered;      ///< when the receiver timestamps the frame
  double nominal_delay_us{0};  ///< receiver's estimate of stamp->delivered
  sim::SimTime tx_start;       ///< ground truth, for diagnostics only
};

struct ChannelStats {
  std::uint64_t transmissions{0};
  std::uint64_t collided_transmissions{0};
  std::uint64_t deliveries{0};
  std::uint64_t per_drops{0};
  std::uint64_t half_duplex_suppressed{0};
  std::uint64_t bytes_on_air{0};
};

/// Mean distance between two points drawn uniformly from a disc of radius R
/// is (128/45pi) R ~= 0.9054 R; used as the propagation compensation.
inline constexpr double kMeanDiscDistanceFactor = 0.905414787;

/// Same rounding path as propagation_delay(); takes the already-computed
/// distance so cached/duplicated distance math stays byte-identical across
/// kernels.
[[nodiscard]] inline sim::SimTime propagation_from_distance(double dist_m) {
  return sim::SimTime::from_us_double(dist_m / kSpeedOfLightMPerUs);
}

class Medium {
 public:
  using RxHandler = std::function<void(const Frame&, const RxInfo&)>;

  explicit Medium(const PhyParams& phy) : phy_(phy) {}
  virtual ~Medium() = default;

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a station; returns its index on this medium.  The handler
  /// fires at the frame's delivery instant.
  virtual std::size_t add_station(Position pos, RxHandler handler) = 0;

  /// Stations that are powered off neither receive nor sense.
  virtual void set_listening(std::size_t idx, bool listening) = 0;

  /// Starts a transmission now; duration is the on-air time.  Returns the
  /// transmission's lifecycle trace ID (also stamped into the frame every
  /// receiver sees, Frame::trace_id).
  virtual std::uint64_t transmit(std::size_t idx, Frame frame,
                                 sim::SimTime duration) = 0;

  /// Would station `idx`, checking at time `at`, find the medium busy?
  /// Only transmissions within radio range are sensed.
  [[nodiscard]] virtual bool would_detect_busy(std::size_t idx,
                                               sim::SimTime at) const = 0;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

  /// Receiver-side compensation constant for a frame of `duration`:
  /// the delay estimate added to a beacon timestamp to place it on the
  /// receiver's timeline (frame air time + nominal propagation + nominal
  /// receive latency).  The residual between this and the actual delay is
  /// the paper's epsilon.
  [[nodiscard]] double nominal_delay_us(sim::SimTime duration) const {
    const double reach = (phy_.radio_range_m > 0.0)
                             ? phy_.radio_range_m
                             : phy_.placement_radius_m;
    const double nominal_prop_us =
        kMeanDiscDistanceFactor * reach / kSpeedOfLightMPerUs;
    const double nominal_rx_us =
        0.5 * (phy_.rx_latency_min.to_us() + phy_.rx_latency_max.to_us());
    return duration.to_us() + nominal_prop_us + nominal_rx_us;
  }

 protected:
  PhyParams phy_;
  ChannelStats stats_;
};

}  // namespace sstsp::mac
