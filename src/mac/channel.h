// Single-hop broadcast channel (IBSS: every station hears every other).
//
// Semantics:
//   * A transmission occupies the medium for its full on-air duration.
//     Overlapping transmissions corrupt each other — no capture effect.
//     Corruption is decided per receiver: a concurrent frame destroys this
//     one only where both senders are audible, so with a finite radio range
//     (PhyParams::radio_range_m) the model exhibits the hidden-terminal
//     problem; in the default single-hop configuration every overlap
//     corrupts everywhere, as before.
//   * Carrier sense honours the CCA latency: a station whose backoff timer
//     expires less than cca_time after another transmission started cannot
//     have detected it and will transmit anyway (-> collision), which is
//     the physical root of the paper's "beacon collision" problem.
//   * After a frame ends, the medium counts as busy for one more ifs_guard
//     so deferred stations do not fire in the turnaround gap.
//   * Each delivery independently suffers the packet error rate, a
//     per-receiver propagation delay (speed of light over actual distance)
//     and a uniformly distributed receive-chain latency; the receiver's MAC
//     sees the frame only at sim-time `delivered`.
//   * Half duplex: a station never receives a frame that overlapped one of
//     its own transmissions.
//
// Hot-path engineering (behaviour-preserving; see DESIGN.md "Performance"):
//   * Station positions never move, so pairwise distances are cached in
//     lazily materialized per-sender rows; propagation delays and range
//     checks read the cache instead of recomputing sqrt per delivery.
//   * With a finite radio range, receiver candidates come from a uniform
//     grid (cell size = radio range, 3x3 neighbourhood query) instead of a
//     scan over every station.  Candidates are visited in ascending station
//     index, which keeps the per-receiver RNG draw order — and therefore
//     every seeded run — byte-identical to the brute-force scan.
//   * The delivery fan-out shares one heap-allocated Frame between all
//     receivers of a transmission (shared_ptr<const Frame>) instead of
//     copying the frame into every receiver's closure.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mac/frame.h"
#include "mac/medium.h"
#include "mac/phy_params.h"
#include "obs/instruments.h"
#include "obs/profiler.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace sstsp::fault {
class FaultInjector;
}  // namespace sstsp::fault

namespace sstsp::mac {

class Channel final : public Medium {
 public:
  Channel(sim::Simulator& sim, const PhyParams& phy);

  /// Registers a station; returns its channel index.  The handler fires at
  /// the frame's delivery instant.
  std::size_t add_station(Position pos, RxHandler handler) override;

  /// Stations that are powered off neither receive nor sense.
  void set_listening(std::size_t idx, bool listening) override;
  [[nodiscard]] bool listening(std::size_t idx) const {
    return stations_[idx].listening;
  }

  [[nodiscard]] const Position& position(std::size_t idx) const {
    return stations_[idx].pos;
  }

  /// Starts a transmission now; duration is the on-air time.  Returns the
  /// transmission's lifecycle trace ID, which is also stamped into the
  /// frame every receiver sees (Frame::trace_id) — a retransmitted or
  /// replayed frame gets a fresh ID for its new time on air.
  std::uint64_t transmit(std::size_t idx, Frame frame,
                         sim::SimTime duration) override;

  /// Would station `idx`, checking at time `at`, find the medium busy?
  /// Only transmissions within radio range are sensed.
  [[nodiscard]] bool would_detect_busy(std::size_t idx,
                                       sim::SimTime at) const override;

  /// Mutual audibility under the configured radio range (always true in
  /// the default single-hop configuration).
  [[nodiscard]] bool in_range(const Position& a, const Position& b) const;

  /// Re-bases the lifecycle trace-ID counter.  A simulation has one channel
  /// so the default (ids from 1) is globally unique; the live runtime has
  /// one channel *per node*, and seeds each with a disjoint range (node id
  /// in the high bits) so tx/rx events correlate across node boundaries.
  /// Must be called before the first transmit().
  void seed_trace_ids(std::uint64_t first_id) { next_tx_id_ = first_id; }

  /// Observability (both may be nullptr): the instruments record each
  /// frame's tx-start -> delivery latency; the profiler attributes the
  /// end-of-frame interference/delivery fan-out to channel-delivery.
  void set_instruments(obs::Instruments* instruments) {
    instruments_ = instruments;
  }
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Attaches a fault injector (nullptr detaches): every delivery that
  /// survives the physical-layer model is submitted for a verdict (drop /
  /// corrupt / delay / duplicate).  The injector draws from its own RNG
  /// substream, so attaching one never perturbs the channel's seeded draw
  /// sequence.  Station channel indices double as node ids here (true for
  /// the scenario runner; the live per-node channels never carry one).
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  struct StationRec {
    Position pos;
    RxHandler handler;
    bool listening{true};
    sim::SimTime last_tx_start{sim::SimTime::never()};
    sim::SimTime last_tx_end{sim::SimTime::zero()};
  };

  struct Tx {
    std::uint64_t id{0};
    std::size_t sender{0};
    Frame frame;
    sim::SimTime start;
    sim::SimTime end;
    bool delivered_processed{false};
  };

  /// Uniform grid over the station positions, cell size = radio range; a
  /// 3x3 neighbourhood query returns every station within range (plus near
  /// misses, filtered by the exact distance check).  Only used when
  /// radio_range_m > 0.
  struct Grid {
    bool built{false};
    double cell_m{0.0};
    double min_x{0.0};
    double min_y{0.0};
    int nx{0};
    int ny{0};
    std::vector<std::vector<std::uint32_t>> cells;
  };

  void finish_transmission(std::uint64_t tx_id);
  void prune_old(sim::SimTime now);
  [[nodiscard]] Tx* find_tx(std::uint64_t tx_id);

  /// Cached distances from station `idx` to every station (lazily
  /// materialized; positions are immutable after add_station).
  const std::vector<double>& dist_row(std::size_t idx) const;
  void invalidate_caches();
  void build_grid() const;
  /// Fills `candidates_` with the stations in the 3x3 cell neighbourhood of
  /// `pos`, in ascending index order (RNG draw-order contract).
  void grid_candidates(const Position& pos) const;

  sim::Simulator& sim_;
  std::vector<StationRec> stations_;
  std::deque<Tx> recent_;  // transmissions still relevant for CS/delivery
  std::uint64_t next_tx_id_{1};
  sim::Rng rng_;
  obs::Instruments* instruments_{nullptr};
  obs::Profiler* profiler_{nullptr};
  fault::FaultInjector* fault_{nullptr};

  // Position-derived caches (mutable: lazily filled through const paths).
  mutable std::vector<std::vector<double>> dist_rows_;
  mutable Grid grid_;
  mutable std::vector<std::uint32_t> candidates_;  // grid query scratch
  std::vector<std::size_t> overlap_senders_;       // per-finish scratch
};

}  // namespace sstsp::mac
