#include "mac/channel.h"

#include <cassert>

namespace sstsp::mac {

namespace {
/// Mean distance between two points drawn uniformly from a disc of radius R
/// is (128/45pi) R ~= 0.9054 R; used as the propagation compensation.
constexpr double kMeanDiscDistanceFactor = 0.905414787;
}  // namespace

Channel::Channel(sim::Simulator& sim, const PhyParams& phy)
    : sim_(sim), phy_(phy), rng_(sim.substream("channel", 0)) {}

std::size_t Channel::add_station(Position pos, RxHandler handler) {
  stations_.push_back(StationRec{pos, std::move(handler), true,
                                 sim::SimTime::never(), sim::SimTime::zero()});
  return stations_.size() - 1;
}

void Channel::set_listening(std::size_t idx, bool listening) {
  stations_[idx].listening = listening;
}

bool Channel::in_range(const Position& a, const Position& b) const {
  if (phy_.radio_range_m <= 0.0) return true;  // single-hop: everyone hears
  return distance_m(a, b) <= phy_.radio_range_m;
}

double Channel::nominal_delay_us(sim::SimTime duration) const {
  const double reach = (phy_.radio_range_m > 0.0)
                           ? phy_.radio_range_m
                           : phy_.placement_radius_m;
  const double nominal_prop_us =
      kMeanDiscDistanceFactor * reach / kSpeedOfLightMPerUs;
  const double nominal_rx_us =
      0.5 * (phy_.rx_latency_min.to_us() + phy_.rx_latency_max.to_us());
  return duration.to_us() + nominal_prop_us + nominal_rx_us;
}

void Channel::prune_old(sim::SimTime now) {
  // Transmissions are appended in start order; drop the ones that can no
  // longer influence carrier sense, interference, or pending deliveries.
  const sim::SimTime horizon =
      now - phy_.ifs_guard - sim::SimTime::from_ms(1);
  while (!recent_.empty() && recent_.front().end < horizon &&
         recent_.front().delivered_processed) {
    recent_.pop_front();
  }
}

std::uint64_t Channel::transmit(std::size_t idx, Frame frame,
                                sim::SimTime duration) {
  const sim::SimTime now = sim_.now();
  prune_old(now);

  Tx tx;
  tx.id = next_tx_id_++;
  tx.sender = idx;
  tx.frame = std::move(frame);
  // Every time on air gets its own lifecycle ID, even for a byte-identical
  // replayed frame: the receivers' events describe *this* transmission.
  tx.frame.trace_id = tx.id;
  tx.start = now;
  tx.end = now + duration;

  ++stats_.transmissions;
  stats_.bytes_on_air += tx.frame.air_bytes;
  stations_[idx].last_tx_start = now;
  stations_[idx].last_tx_end = tx.end;

  const std::uint64_t id = tx.id;
  recent_.push_back(std::move(tx));
  sim_.at(recent_.back().end, [this, id] { finish_transmission(id); });
  return id;
}

void Channel::finish_transmission(std::uint64_t tx_id) {
  obs::Span span(profiler_, obs::Phase::kChannelDelivery);
  // Locate the record (the deque is short: only frames within the last
  // millisecond or so are retained).
  Tx* tx = nullptr;
  for (Tx& t : recent_) {
    if (t.id == tx_id) {
      tx = &t;
      break;
    }
  }
  assert(tx != nullptr && "transmission record pruned before completion");
  tx->delivered_processed = true;

  const Position sender_pos = stations_[tx->sender].pos;
  const sim::SimTime start = tx->start;
  const sim::SimTime end = tx->end;
  const double nominal_us = nominal_delay_us(end - start);
  bool lost_to_interference = false;

  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (s == tx->sender) continue;
    StationRec& rx = stations_[s];
    if (!rx.listening) continue;
    if (!in_range(sender_pos, rx.pos)) continue;
    // Half duplex: if the receiver transmitted during this frame it heard
    // nothing (its own tx would also have collided, but cover the edge
    // where it started transmitting mid-frame).
    if (rx.last_tx_start < end && rx.last_tx_end > start) {
      ++stats_.half_duplex_suppressed;
      continue;
    }
    // Interference is per-receiver: a concurrent transmission corrupts this
    // frame only where both are audible (this is what produces the hidden
    // terminal problem once a radio range is configured).
    bool corrupted = false;
    for (const Tx& other : recent_) {
      if (other.id == tx->id) continue;
      if (other.start >= end || other.end <= start) continue;  // no overlap
      if (!in_range(stations_[other.sender].pos, rx.pos)) continue;
      corrupted = true;
      break;
    }
    if (corrupted) {
      lost_to_interference = true;
      continue;
    }
    if (rng_.bernoulli(phy_.packet_error_rate)) {
      ++stats_.per_drops;
      continue;
    }
    const sim::SimTime prop = propagation_delay(sender_pos, rx.pos);
    const sim::SimTime rx_latency = sim::SimTime::from_us_double(rng_.uniform(
        phy_.rx_latency_min.to_us(), phy_.rx_latency_max.to_us()));
    const sim::SimTime delivered = end + prop + rx_latency;

    RxInfo info;
    info.delivered = delivered;
    info.nominal_delay_us = nominal_us;
    info.tx_start = start;
    ++stats_.deliveries;
    if (instruments_ != nullptr) {
      instruments_->on_delivery((delivered - start).to_us());
    }

    // Copy the frame into the closure: the deque entry may be pruned before
    // the delivery event fires.
    sim_.at(delivered, [this, s, frame = tx->frame, info] {
      if (stations_[s].listening) stations_[s].handler(frame, info);
    });
  }
  if (lost_to_interference) ++stats_.collided_transmissions;
}

bool Channel::would_detect_busy(std::size_t idx, sim::SimTime at) const {
  const Position& me = stations_[idx].pos;
  for (const Tx& tx : recent_) {
    if (tx.sender == idx) continue;
    if (!in_range(stations_[tx.sender].pos, me)) continue;
    const sim::SimTime prop = propagation_delay(stations_[tx.sender].pos, me);
    const sim::SimTime detectable_from = tx.start + prop + phy_.cca_time;
    const sim::SimTime busy_until = tx.end + prop + phy_.ifs_guard;
    if (at >= detectable_from && at <= busy_until) return true;
  }
  return false;
}

}  // namespace sstsp::mac
