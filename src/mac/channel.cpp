#include "mac/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fault/injector.h"

namespace sstsp::mac {

Channel::Channel(sim::Simulator& sim, const PhyParams& phy)
    : Medium(phy), sim_(sim), rng_(sim.substream("channel", 0)) {}

std::size_t Channel::add_station(Position pos, RxHandler handler) {
  stations_.push_back(StationRec{pos, std::move(handler), true,
                                 sim::SimTime::never(), sim::SimTime::zero()});
  invalidate_caches();
  return stations_.size() - 1;
}

void Channel::set_listening(std::size_t idx, bool listening) {
  stations_[idx].listening = listening;
}

void Channel::invalidate_caches() {
  dist_rows_.clear();
  grid_.built = false;
}

bool Channel::in_range(const Position& a, const Position& b) const {
  if (phy_.radio_range_m <= 0.0) return true;  // single-hop: everyone hears
  return distance_m(a, b) <= phy_.radio_range_m;
}

const std::vector<double>& Channel::dist_row(std::size_t idx) const {
  if (dist_rows_.size() != stations_.size()) {
    dist_rows_.assign(stations_.size(), {});
  }
  std::vector<double>& row = dist_rows_[idx];
  if (row.empty() && !stations_.empty()) {
    row.resize(stations_.size());
    const Position& me = stations_[idx].pos;
    for (std::size_t j = 0; j < stations_.size(); ++j) {
      row[j] = distance_m(me, stations_[j].pos);
    }
  }
  return row;
}

void Channel::build_grid() const {
  grid_.cell_m = phy_.radio_range_m;
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;
  bool first = true;
  for (const StationRec& st : stations_) {
    if (first) {
      min_x = max_x = st.pos.x_m;
      min_y = max_y = st.pos.y_m;
      first = false;
    } else {
      min_x = std::min(min_x, st.pos.x_m);
      max_x = std::max(max_x, st.pos.x_m);
      min_y = std::min(min_y, st.pos.y_m);
      max_y = std::max(max_y, st.pos.y_m);
    }
  }
  grid_.min_x = min_x;
  grid_.min_y = min_y;
  grid_.nx = std::max(
      1, static_cast<int>(std::floor((max_x - min_x) / grid_.cell_m)) + 1);
  grid_.ny = std::max(
      1, static_cast<int>(std::floor((max_y - min_y) / grid_.cell_m)) + 1);
  grid_.cells.assign(static_cast<std::size_t>(grid_.nx) *
                         static_cast<std::size_t>(grid_.ny),
                     {});
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const Position& p = stations_[i].pos;
    const int cx = std::clamp(
        static_cast<int>(std::floor((p.x_m - min_x) / grid_.cell_m)), 0,
        grid_.nx - 1);
    const int cy = std::clamp(
        static_cast<int>(std::floor((p.y_m - min_y) / grid_.cell_m)), 0,
        grid_.ny - 1);
    grid_.cells[static_cast<std::size_t>(cy) *
                    static_cast<std::size_t>(grid_.nx) +
                static_cast<std::size_t>(cx)]
        .push_back(static_cast<std::uint32_t>(i));
  }
  grid_.built = true;
}

void Channel::grid_candidates(const Position& pos) const {
  if (!grid_.built) build_grid();
  candidates_.clear();
  const int cx = std::clamp(
      static_cast<int>(std::floor((pos.x_m - grid_.min_x) / grid_.cell_m)), 0,
      grid_.nx - 1);
  const int cy = std::clamp(
      static_cast<int>(std::floor((pos.y_m - grid_.min_y) / grid_.cell_m)), 0,
      grid_.ny - 1);
  for (int y = std::max(0, cy - 1); y <= std::min(grid_.ny - 1, cy + 1); ++y) {
    for (int x = std::max(0, cx - 1); x <= std::min(grid_.nx - 1, cx + 1);
         ++x) {
      const auto& cell = grid_.cells[static_cast<std::size_t>(y) *
                                         static_cast<std::size_t>(grid_.nx) +
                                     static_cast<std::size_t>(x)];
      candidates_.insert(candidates_.end(), cell.begin(), cell.end());
    }
  }
  // Ascending station index: the RNG draw-order contract requires visiting
  // receivers exactly as the full scan would.
  std::sort(candidates_.begin(), candidates_.end());
}

void Channel::prune_old(sim::SimTime now) {
  // Transmissions are appended in start order; drop the ones that can no
  // longer influence carrier sense, interference, or pending deliveries.
  const sim::SimTime horizon =
      now - phy_.ifs_guard - sim::SimTime::from_ms(1);
  while (!recent_.empty() && recent_.front().end < horizon &&
         recent_.front().delivered_processed) {
    recent_.pop_front();
  }
}

std::uint64_t Channel::transmit(std::size_t idx, Frame frame,
                                sim::SimTime duration) {
  const sim::SimTime now = sim_.now();
  prune_old(now);

  Tx tx;
  tx.id = next_tx_id_++;
  tx.sender = idx;
  tx.frame = std::move(frame);
  // Every time on air gets its own lifecycle ID, even for a byte-identical
  // replayed frame: the receivers' events describe *this* transmission.
  tx.frame.trace_id = tx.id;
  tx.start = now;
  tx.end = now + duration;

  ++stats_.transmissions;
  stats_.bytes_on_air += tx.frame.air_bytes;
  stations_[idx].last_tx_start = now;
  stations_[idx].last_tx_end = tx.end;
  // Materialize the sender's distance row up front: carrier sense and the
  // delivery fan-out for this transmission will read it.
  (void)dist_row(idx);

  const std::uint64_t id = tx.id;
  recent_.push_back(std::move(tx));
  sim_.at(recent_.back().end, [this, id] { finish_transmission(id); });
  return id;
}

Channel::Tx* Channel::find_tx(std::uint64_t tx_id) {
  // Transmission ids are assigned monotonically and recent_ is kept in push
  // order, so the record is found by binary search instead of a linear scan.
  auto it = std::lower_bound(
      recent_.begin(), recent_.end(), tx_id,
      [](const Tx& t, std::uint64_t id) { return t.id < id; });
  if (it == recent_.end() || it->id != tx_id) return nullptr;
  return &*it;
}

void Channel::finish_transmission(std::uint64_t tx_id) {
  obs::Span span(profiler_, obs::Phase::kChannelDelivery);
  Tx* tx = find_tx(tx_id);
  assert(tx != nullptr && "transmission record pruned before completion");
  tx->delivered_processed = true;

  const std::size_t sender = tx->sender;
  const sim::SimTime start = tx->start;
  const sim::SimTime end = tx->end;
  const double nominal_us = nominal_delay_us(end - start);
  const std::vector<double>& dist = dist_row(sender);
  const bool finite_range = phy_.radio_range_m > 0.0;

  // Transmissions overlapping this frame, collected once instead of
  // re-scanning recent_ for every receiver.
  overlap_senders_.clear();
  for (const Tx& other : recent_) {
    if (other.id == tx_id) continue;
    if (other.start >= end || other.end <= start) continue;  // no overlap
    overlap_senders_.push_back(other.sender);
  }

  // One shared frame for the whole fan-out; receiver closures hold a
  // reference instead of a copy (the deque entry may be pruned before the
  // delivery events fire).
  auto frame = std::make_shared<const Frame>(tx->frame);
  bool lost_to_interference = false;

  auto consider_receiver = [&](std::size_t s) {
    if (s == sender) return;
    StationRec& rx = stations_[s];
    if (!rx.listening) return;
    if (finite_range && dist[s] > phy_.radio_range_m) return;
    // Half duplex: if the receiver transmitted during this frame it heard
    // nothing (its own tx would also have collided, but cover the edge
    // where it started transmitting mid-frame).
    if (rx.last_tx_start < end && rx.last_tx_end > start) {
      ++stats_.half_duplex_suppressed;
      return;
    }
    // Interference is per-receiver: a concurrent transmission corrupts this
    // frame only where both are audible (this is what produces the hidden
    // terminal problem once a radio range is configured).
    bool corrupted = false;
    if (finite_range) {
      for (const std::size_t o : overlap_senders_) {
        if (dist_row(o)[s] <= phy_.radio_range_m) {
          corrupted = true;
          break;
        }
      }
    } else {
      corrupted = !overlap_senders_.empty();
    }
    if (corrupted) {
      lost_to_interference = true;
      return;
    }
    if (rng_.bernoulli(phy_.packet_error_rate)) {
      ++stats_.per_drops;
      return;
    }
    // Injected faults come after the physical-layer model: the injector's
    // own RNG substream issues the verdict, so the channel's draw sequence
    // above stays byte-identical with and without a plan attached.
    fault::DeliveryVerdict verdict;
    if (fault_ != nullptr) {
      verdict = fault_->on_delivery(sim_.now().to_sec(), frame->sender,
                                    static_cast<NodeId>(s));
      if (verdict.drop) return;
    }
    const sim::SimTime prop = propagation_from_distance(dist[s]);
    const sim::SimTime rx_latency = sim::SimTime::from_us_double(rng_.uniform(
        phy_.rx_latency_min.to_us(), phy_.rx_latency_max.to_us()));
    sim::SimTime delivered = end + prop + rx_latency;
    if (verdict.extra_delay_us > 0.0) {
      delivered += sim::SimTime::from_us_double(verdict.extra_delay_us);
    }
    std::shared_ptr<const Frame> effective = frame;
    if (verdict.corrupt) {
      effective = std::make_shared<const Frame>(fault::corrupt_frame(*frame));
    }

    RxInfo info;
    info.delivered = delivered;
    info.nominal_delay_us = nominal_us;
    info.tx_start = start;
    ++stats_.deliveries;
    if (instruments_ != nullptr) {
      instruments_->on_delivery((delivered - start).to_us());
    }

    sim_.at(delivered, [this, s, effective, info] {
      if (stations_[s].listening) stations_[s].handler(*effective, info);
    });

    for (const double dup_delay_us : verdict.duplicate_delays_us) {
      RxInfo dup = info;
      dup.delivered = delivered + sim::SimTime::from_us_double(dup_delay_us);
      ++stats_.deliveries;
      if (instruments_ != nullptr) {
        instruments_->on_delivery((dup.delivered - start).to_us());
      }
      sim_.at(dup.delivered, [this, s, effective, dup] {
        if (stations_[s].listening) stations_[s].handler(*effective, dup);
      });
    }
  };

  if (finite_range) {
    grid_candidates(stations_[sender].pos);
    for (const std::uint32_t s : candidates_) consider_receiver(s);
  } else {
    for (std::size_t s = 0; s < stations_.size(); ++s) consider_receiver(s);
  }
  if (lost_to_interference) ++stats_.collided_transmissions;
  // Completed records are reclaimed here as well, so delivered entries do
  // not linger until the next transmit() call.
  prune_old(sim_.now());
}

bool Channel::would_detect_busy(std::size_t idx, sim::SimTime at) const {
  const bool finite_range = phy_.radio_range_m > 0.0;
  for (const Tx& tx : recent_) {
    if (tx.sender == idx) continue;
    // Distances are read through the *sender's* row (symmetric, and already
    // materialized by transmit()), so carrier sensing never allocates.
    const double d = dist_row(tx.sender)[idx];
    if (finite_range && d > phy_.radio_range_m) continue;
    const sim::SimTime prop = propagation_from_distance(d);
    const sim::SimTime detectable_from = tx.start + prop + phy_.cca_time;
    const sim::SimTime busy_until = tx.end + prop + phy_.ifs_guard;
    if (at >= detectable_from && at <= busy_until) return true;
  }
  return false;
}

}  // namespace sstsp::mac
