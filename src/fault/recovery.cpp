#include "fault/recovery.h"

#include "obs/json.h"

namespace sstsp::fault {

namespace {

void append_optional(obs::json::Writer& w, std::string_view key, double v) {
  if (v >= 0.0) {
    w.kv(key, v);
  } else {
    w.kv_null(key);
  }
}

}  // namespace

void RecoveryReport::append_json(obs::json::Writer& w) const {
  w.begin_object();
  w.key("records").begin_array();
  for (const RecoveryRecord& r : records) {
    w.begin_object();
    w.kv("fault", r.fault);
    if (r.node == mac::kNoNode) {
      w.kv_null("node");
    } else {
      w.kv("node", static_cast<std::uint64_t>(r.node));
    }
    w.kv("t_s", r.fault_t_s);
    append_optional(w, "reelection_s", r.needs_election ? r.reelection_s : -1.0);
    append_optional(w, "reelection_bps",
                    r.needs_election ? r.reelection_bps : -1.0);
    append_optional(w, "reattach_s", r.needs_attach ? r.reattach_s : -1.0);
    append_optional(w, "resync_s", r.resync_s);
    w.kv("recovered", r.recovered);
    w.end_object();
  }
  w.end_array();
  w.key("packet_faults").begin_object();
  w.kv("drops", packet_faults.drops);
  w.kv("partition_drops", packet_faults.partition_drops);
  w.kv("isolation_drops", packet_faults.isolation_drops);
  w.kv("duplicates", packet_faults.duplicates);
  w.kv("delayed", packet_faults.delayed);
  w.kv("reordered", packet_faults.reordered);
  w.kv("corrupted", packet_faults.corrupted);
  w.end_object();
  w.kv("rejected_frames", rejected_frames);
  append_optional(w, "post_fault_steady_max_us", post_fault_steady_max_us);
  w.end_object();
}

RecoveryTracker::RecoveryTracker(double beacon_period_s,
                                 double sync_threshold_us)
    : bp_s_(beacon_period_s), threshold_us_(sync_threshold_us) {}

void RecoveryTracker::expect_reelection(const std::string& fault,
                                        mac::NodeId node, double t_s) {
  RecoveryRecord r;
  r.fault = fault;
  r.node = node;
  r.fault_t_s = t_s;
  r.needs_election = true;
  // Silent BPs count from the lost reference's last beacon, which precedes
  // the crash instant by up to one period.
  double silence = t_s;
  if (node != mac::kNoNode && node < last_tx_s_.size() &&
      last_tx_s_[node] > 0.0 && last_tx_s_[node] <= t_s) {
    silence = last_tx_s_[node];
  }
  report_.records.push_back(r);
  silence_start_s_.push_back(silence);
  steady_max_us_ = -1.0;  // new transient: restart the steady window
  report_.post_fault_steady_max_us = -1.0;
}

void RecoveryTracker::expect_resync(const std::string& fault, mac::NodeId node,
                                    double t_s) {
  RecoveryRecord r;
  r.fault = fault;
  r.node = node;
  r.fault_t_s = t_s;
  report_.records.push_back(r);
  silence_start_s_.push_back(t_s);
  steady_max_us_ = -1.0;
  report_.post_fault_steady_max_us = -1.0;
}

void RecoveryTracker::expect_reattach(const std::string& fault,
                                      mac::NodeId node, double t_s) {
  RecoveryRecord r;
  r.fault = fault;
  r.node = node;
  r.fault_t_s = t_s;
  r.needs_attach = true;
  report_.records.push_back(r);
  silence_start_s_.push_back(t_s);
  steady_max_us_ = -1.0;
  report_.post_fault_steady_max_us = -1.0;
}

void RecoveryTracker::on_trace_event(const trace::TraceEvent& event) {
  switch (event.kind) {
    case trace::EventKind::kBeaconTx: {
      if (event.node == mac::kNoNode) return;
      if (event.node >= last_tx_s_.size()) {
        last_tx_s_.resize(event.node + 1, 0.0);
      }
      last_tx_s_[event.node] = event.time.to_sec();
      return;
    }
    case trace::EventKind::kElectionWon: {
      const double t = event.time.to_sec();
      // Close the oldest record still waiting for an election.
      for (std::size_t i = 0; i < report_.records.size(); ++i) {
        RecoveryRecord& r = report_.records[i];
        if (!r.needs_election || r.reelection_s >= 0.0 || t < r.fault_t_s) {
          continue;
        }
        r.reelection_s = t - r.fault_t_s;
        if (bp_s_ > 0.0) {
          r.reelection_bps = (t - silence_start_s_[i]) / bp_s_;
        }
        return;
      }
      return;
    }
    case trace::EventKind::kRejectGuard:
    case trace::EventKind::kRejectInterval:
    case trace::EventKind::kRejectKey:
    case trace::EventKind::kRejectMac:
      ++report_.rejected_frames;
      return;
    default:
      return;
  }
}

void RecoveryTracker::on_cluster_attach_sample(double t_s,
                                               double attached_fraction) {
  const bool full = attached_fraction >= 1.0 - 1e-9;
  for (RecoveryRecord& r : report_.records) {
    if (!r.needs_attach || r.reattach_s >= 0.0 || t_s <= r.fault_t_s) continue;
    // Require an observed detachment before closing: right after the fault
    // the stale-tau window keeps every node nominally attached, and a
    // trivially full sample must not count as recovery.
    if (!full) {
      r.detach_seen = true;
    } else if (r.detach_seen) {
      r.reattach_s = t_s - r.fault_t_s;
    }
  }
}

void RecoveryTracker::on_max_diff_sample(double t_s, double max_diff_us) {
  if (max_diff_us <= threshold_us_) {
    for (RecoveryRecord& r : report_.records) {
      if (r.recovered || t_s <= r.fault_t_s) continue;
      if (r.needs_election && r.reelection_s < 0.0) continue;
      if (r.needs_attach && r.reattach_s < 0.0) continue;
      r.resync_s = t_s - r.fault_t_s;
      r.recovered = true;
    }
  }
  if (report_.records.empty()) return;
  for (const RecoveryRecord& r : report_.records) {
    if (!r.recovered) return;  // still in (or before) a transient
  }
  if (steady_max_us_ < max_diff_us) steady_max_us_ = max_diff_us;
  report_.post_fault_steady_max_us = steady_max_us_;
}

void RecoveryTracker::finalize(const FaultStats& stats) {
  report_.packet_faults = stats;
}

}  // namespace sstsp::fault
