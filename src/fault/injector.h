// FaultInjector: evaluates a FaultPlan against individual deliveries.
//
// Both injection points consult the same object:
//   * mac::Channel (simulation) calls on_delivery() for every frame that
//     survives the physical-layer model and applies the verdict before
//     scheduling reception;
//   * fault::FaultyTransport (live UDP/loopback) calls it for every received
//     datagram.
//
// Determinism: the injector owns its own RNG substream (seeded from the
// plan's seed and the run seed), so faulted and unfaulted runs never perturb
// each other's draw sequences, and the same plan + seed replays the same
// verdicts in the simulator bit-for-bit.
//
// schedule_fault_events() turns the plan's node- and clock-level entries into
// simulator events through a small hook interface, so run::Network (sim),
// net::Swarm (loopback/UDP) and the standalone node runner share one
// scheduling implementation.  "reference"-targeted faults resolve the victim
// when the event fires, not when the plan loads.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fault/plan.h"
#include "sim/rng.h"

namespace sstsp::sim {
class Simulator;
}  // namespace sstsp::sim

namespace sstsp::mac {
struct Frame;
}  // namespace sstsp::mac

namespace sstsp::fault {

/// Outcome of one delivery consult.  At most one of drop/corrupt/extra delay
/// applies per matching directive; duplicates compose with the original.
struct DeliveryVerdict {
  bool drop{false};
  bool corrupt{false};
  double extra_delay_us{0.0};
  std::vector<double> duplicate_delays_us;
};

/// Counters for the run report ("recovery.packet_faults").
struct FaultStats {
  std::uint64_t drops{0};
  std::uint64_t partition_drops{0};
  std::uint64_t isolation_drops{0};
  std::uint64_t duplicates{0};
  std::uint64_t delayed{0};
  std::uint64_t reordered{0};
  std::uint64_t corrupted{0};
};

class FaultInjector {
 public:
  /// rng should be a dedicated substream, e.g.
  /// sim.substream("faults", plan.seed).
  FaultInjector(FaultPlan plan, sim::Rng rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Verdict for one delivery attempt from -> to at now_s (seconds of run
  /// time).  Mutates the injector's RNG; call exactly once per attempt.
  [[nodiscard]] DeliveryVerdict on_delivery(double now_s, mac::NodeId from,
                                            mac::NodeId to);

  /// Paused nodes are isolated from the medium in both directions; their
  /// clocks and protocol state keep running.
  void set_isolated(mac::NodeId node, bool isolated);

  /// True when an active partition (or asymmetric link) cuts from -> to.
  [[nodiscard]] bool link_cut(double now_s, mac::NodeId from,
                              mac::NodeId to) const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  sim::Rng rng_;
  FaultStats stats_;
  std::vector<mac::NodeId> isolated_;
};

/// Returns a copy of the frame mangled the way a corrupted reception would
/// be: the SSTSP beacon's MAC is flipped (µTESLA rejects it) or the TSF
/// timestamp's low bit is flipped.
[[nodiscard]] mac::Frame corrupt_frame(const mac::Frame& frame);

/// Live-side equivalent: flips the last byte of an encoded datagram, which
/// lands in the authenticated beacon body so the receiver's crypto checks
/// reject the frame.
void corrupt_datagram(std::vector<std::uint8_t>& bytes);

/// Host-side callbacks for node- and clock-level fault events.  Unset
/// callbacks are skipped.
struct FaultHooks {
  /// Resolves "node":"reference" when the fault fires; nullopt skips it.
  std::function<std::optional<mac::NodeId>()> current_reference;
  /// Crash (powered=false) / restart (powered=true).
  std::function<void(mac::NodeId, bool powered)> set_power;
  /// Applies a hardware-clock step and/or drift change.
  std::function<void(mac::NodeId, double step_us, double drift_delta_ppm)>
      clock_fault;
  /// Recovery-accounting notifications, fired as each event executes.
  std::function<void(const NodeFault&, mac::NodeId resolved)> on_node_fault;
  std::function<void(const NodeFault&, mac::NodeId resolved)> on_node_restart;
  std::function<void(const ClockFault&, mac::NodeId resolved)> on_clock_fault;
};

/// Schedules the plan's node_faults and clock_faults on the simulator.
/// Pauses route through injector->set_isolated (injector may be null when the
/// plan has no pauses).  Packet faults and partitions need no events — the
/// injector evaluates their time windows per delivery.
void schedule_fault_events(sim::Simulator& sim, const FaultPlan& plan,
                           FaultInjector* injector, FaultHooks hooks);

}  // namespace sstsp::fault
