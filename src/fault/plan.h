// Declarative fault plan: a seeded, timelined description of everything the
// resilience harness may do to a run — packet-level faults (drop, duplicate,
// reorder, delay jitter, corruption), link-level partitions (optionally
// asymmetric), node-level crash/pause/restart, and hardware-clock steps or
// drift changes.
//
// One plan drives both worlds: mac::Channel consults a FaultInjector built
// from the plan in simulation, and fault::FaultyTransport applies the same
// verdicts to live UDP/loopback datagrams.  All randomness comes from a
// dedicated RNG substream seeded by (plan.seed, run seed), so the same plan
// and seed replay bit-identically in the simulator.
//
// JSON shape (all keys optional; see DESIGN.md §9 and README "Fault
// injection"):
//   {
//     "seed": 1,
//     "packet":      [{"kind":"drop","probability":0.1,"start":0,"end":60,
//                      "from":3,"to":7}, ...],
//     "partitions":  [{"start":20,"end":40,"group_a":[0,1],
//                      "group_b":[2,3,4],"asymmetric":false}, ...],
//     "node_faults": [{"kind":"crash","node":"reference","at":30,
//                      "restart":-1}, ...],
//     "clock_faults":[{"node":1,"at":25,"step_us":500,
//                      "drift_delta_ppm":20}, ...]
//   }
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mac/phy_params.h"

namespace sstsp::obs::json {
struct Value;
class Writer;
}  // namespace sstsp::obs::json

namespace sstsp::fault {

/// What a packet-level directive does to each matching delivery.
enum class PacketFaultKind {
  kDrop,       // delivery suppressed
  kDuplicate,  // extra copies delivered after copy_spacing_us each
  kDelay,      // extra latency uniform(delay_min_us, delay_max_us)
  kReorder,    // delayed past the successor frame: uniform(gap, 1.5*gap)
  kCorrupt,    // payload mangled so crypto/validity checks reject it
};

/// One timelined packet directive.  from/to scope the directive to a
/// directed link; mac::kNoNode is a wildcard ("any sender"/"any receiver").
struct PacketFault {
  PacketFaultKind kind{PacketFaultKind::kDrop};
  double start_s{0.0};
  double end_s{-1.0};  // < 0: until the end of the run
  double probability{1.0};
  mac::NodeId from{mac::kNoNode};
  mac::NodeId to{mac::kNoNode};
  // kDelay
  double delay_min_us{0.0};
  double delay_max_us{0.0};
  // kReorder: extra delay uniform(gap_us, 1.5*gap_us); the default of one
  // beacon period guarantees the successor beacon overtakes this one.
  double gap_us{100000.0};
  // kDuplicate
  int copies{1};
  double copy_spacing_us{500.0};
};

/// Link-level partition between two node groups over [start_s, end_s].
/// An empty group_b means "everyone not in group_a".  Asymmetric cuts only
/// the a->b direction (b->a still delivers), modelling one-way links.
struct Partition {
  double start_s{0.0};
  double end_s{-1.0};  // < 0: never heals
  std::vector<mac::NodeId> group_a;
  std::vector<mac::NodeId> group_b;
  bool asymmetric{false};
};

enum class NodeFaultKind {
  kCrash,  // powered off (protocol state lost); optionally restarted
  kPause,  // isolated from the medium, clock and state keep running
};

/// Node-level fault.  reference=true resolves the victim to whichever node
/// holds the reference role when the fault fires (skipped if none).
struct NodeFault {
  NodeFaultKind kind{NodeFaultKind::kCrash};
  bool reference{false};
  mac::NodeId node{mac::kNoNode};
  double at_s{0.0};
  double restart_s{-1.0};  // < 0: never restarts
};

/// Hardware-clock fault: an instantaneous step and/or a permanent drift
/// change applied to one node's oscillator at at_s.
struct ClockFault {
  bool reference{false};
  mac::NodeId node{mac::kNoNode};
  double at_s{0.0};
  double step_us{0.0};
  double drift_delta_ppm{0.0};
};

struct FaultPlan {
  std::uint64_t seed{1};
  std::vector<PacketFault> packet;
  std::vector<Partition> partitions;
  std::vector<NodeFault> node_faults;
  std::vector<ClockFault> clock_faults;

  [[nodiscard]] bool empty() const {
    return packet.empty() && partitions.empty() && node_faults.empty() &&
           clock_faults.empty();
  }
};

/// Parses a plan from a JSON value.  On failure returns nullopt and, when
/// error != nullptr, sets it to a message naming the offending field path and
/// source line (e.g. "line 4: node_faults[0].kind: unknown fault kind ...").
[[nodiscard]] std::optional<FaultPlan> parse_plan(const obs::json::Value& v,
                                                 std::string* error);

/// Parses a plan from JSON text.
[[nodiscard]] std::optional<FaultPlan> parse_plan_text(std::string_view text,
                                                       std::string* error);

/// Loads a plan from a JSON file.
[[nodiscard]] std::optional<FaultPlan> load_plan(const std::string& path,
                                                 std::string* error);

/// Serializes the plan (all fields explicit).  parse(to_json_text(p)) == p.
void append_json(const FaultPlan& plan, obs::json::Writer& w);
[[nodiscard]] std::string to_json_text(const FaultPlan& plan);

[[nodiscard]] const char* to_string(PacketFaultKind kind);
[[nodiscard]] const char* to_string(NodeFaultKind kind);

}  // namespace sstsp::fault
