// Fault-injecting net::Transport decorator.
//
// Wraps any transport (UDP or loopback) and applies the same FaultPlan
// verdicts that mac::Channel applies in simulation: received datagrams can
// be dropped, corrupted, delayed/reordered (rescheduled on the owning
// simulator) or duplicated before they reach the node's rx handler.  Sends
// pass through untouched — every fault acts on the receive side, so a
// directed `from`/`to` scope behaves identically in both worlds.
//
// The decorator decodes each datagram just enough to learn the sender for
// link scoping; undecodable datagrams pass through so the node's own
// decode-error accounting still sees them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/injector.h"
#include "net/transport.h"

namespace sstsp::sim {
class Simulator;
}  // namespace sstsp::sim

namespace sstsp::fault {

class FaultyTransport final : public net::Transport {
 public:
  /// self is the receiving node's id (the `to` end of every verdict).  The
  /// simulator drives delayed/duplicate redelivery: virtual time under
  /// loopback, the reactor's wall-clock queue under UDP.
  FaultyTransport(net::Transport& inner, sim::Simulator& sim,
                  FaultInjector& injector, mac::NodeId self);

  bool send(std::span<const std::uint8_t> datagram,
            const net::TxMeta& meta) override;
  void set_rx_handler(RxHandler handler) override;
  [[nodiscard]] const net::TransportStats& stats() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  void on_datagram(std::span<const std::uint8_t> datagram,
                   const net::RxMeta& meta);
  void deliver(const std::vector<std::uint8_t>& bytes,
               const net::RxMeta& meta);

  net::Transport& inner_;
  sim::Simulator& sim_;
  FaultInjector& injector_;
  mac::NodeId self_;
  RxHandler handler_;
};

}  // namespace sstsp::fault
