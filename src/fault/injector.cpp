#include "fault/injector.h"

#include <algorithm>
#include <memory>

#include "mac/frame.h"
#include "sim/simulator.h"

namespace sstsp::fault {

namespace {

bool contains(const std::vector<mac::NodeId>& group, mac::NodeId id) {
  return std::find(group.begin(), group.end(), id) != group.end();
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, sim::Rng rng)
    : plan_(std::move(plan)), rng_(rng) {}

bool FaultInjector::link_cut(double now_s, mac::NodeId from,
                             mac::NodeId to) const {
  for (const Partition& p : plan_.partitions) {
    if (now_s < p.start_s || (p.end_s >= 0.0 && now_s > p.end_s)) continue;
    const bool from_a = contains(p.group_a, from);
    const bool to_a = contains(p.group_a, to);
    const auto in_b = [&p](mac::NodeId id, bool in_a) {
      return p.group_b.empty() ? !in_a : contains(p.group_b, id);
    };
    if (from_a && in_b(to, to_a)) return true;  // a -> b always cut
    if (!p.asymmetric && to_a && in_b(from, from_a)) return true;
  }
  return false;
}

DeliveryVerdict FaultInjector::on_delivery(double now_s, mac::NodeId from,
                                           mac::NodeId to) {
  DeliveryVerdict v;
  if (contains(isolated_, from) || contains(isolated_, to)) {
    ++stats_.isolation_drops;
    v.drop = true;
    return v;
  }
  if (link_cut(now_s, from, to)) {
    ++stats_.partition_drops;
    v.drop = true;
    return v;
  }
  for (const PacketFault& f : plan_.packet) {
    if (now_s < f.start_s || (f.end_s >= 0.0 && now_s > f.end_s)) continue;
    if (f.from != mac::kNoNode && f.from != from) continue;
    if (f.to != mac::kNoNode && f.to != to) continue;
    // p == 1 draws nothing, so always-on directives stay draw-free.
    if (f.probability < 1.0 && !rng_.bernoulli(f.probability)) continue;
    switch (f.kind) {
      case PacketFaultKind::kDrop:
        ++stats_.drops;
        v.drop = true;
        return v;
      case PacketFaultKind::kDuplicate:
        for (int c = 1; c <= f.copies; ++c) {
          v.duplicate_delays_us.push_back(c * f.copy_spacing_us);
          ++stats_.duplicates;
        }
        break;
      case PacketFaultKind::kDelay:
        v.extra_delay_us += rng_.uniform(f.delay_min_us, f.delay_max_us);
        ++stats_.delayed;
        break;
      case PacketFaultKind::kReorder:
        // Past the next frame on this link by construction: the successor
        // departs one gap later and overtakes this delivery.
        v.extra_delay_us += rng_.uniform(f.gap_us, 1.5 * f.gap_us);
        ++stats_.reordered;
        break;
      case PacketFaultKind::kCorrupt:
        if (!v.corrupt) ++stats_.corrupted;
        v.corrupt = true;
        break;
    }
  }
  return v;
}

void FaultInjector::set_isolated(mac::NodeId node, bool isolated) {
  const auto it = std::find(isolated_.begin(), isolated_.end(), node);
  if (isolated && it == isolated_.end()) {
    isolated_.push_back(node);
  } else if (!isolated && it != isolated_.end()) {
    isolated_.erase(it);
  }
}

mac::Frame corrupt_frame(const mac::Frame& frame) {
  mac::Frame out = frame;
  if (auto* sstsp = std::get_if<mac::SstspBeaconBody>(&out.body)) {
    sstsp->mac[0] ^= 0xFF;  // µTESLA MAC check rejects the copy
  } else if (auto* tsf = std::get_if<mac::TsfBeaconBody>(&out.body)) {
    tsf->timestamp_us ^= 1;  // TSF has no integrity check; skews the stamp
  }
  return out;
}

void corrupt_datagram(std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  // The tail of the datagram is inside the authenticated beacon body, so the
  // receiver's key-chain/MAC verification rejects the frame.
  bytes.back() ^= 0xFF;
}

void schedule_fault_events(sim::Simulator& sim, const FaultPlan& plan,
                           FaultInjector* injector, FaultHooks hooks) {
  const auto shared = std::make_shared<FaultHooks>(std::move(hooks));
  const auto resolve = [shared](bool reference, mac::NodeId node)
      -> std::optional<mac::NodeId> {
    if (!reference) return node;
    if (!shared->current_reference) return std::nullopt;
    return shared->current_reference();
  };

  for (const NodeFault& f : plan.node_faults) {
    sim.at(sim::SimTime::from_sec_double(f.at_s),
           [&sim, shared, injector, resolve, f] {
             const auto victim = resolve(f.reference, f.node);
             if (!victim) return;  // no reference to kill right now
             if (f.kind == NodeFaultKind::kCrash) {
               if (shared->set_power) shared->set_power(*victim, false);
             } else if (injector != nullptr) {
               injector->set_isolated(*victim, true);
             }
             if (shared->on_node_fault) shared->on_node_fault(f, *victim);
             if (f.restart_s >= 0.0) {
               const mac::NodeId id = *victim;
               sim.at(sim::SimTime::from_sec_double(f.restart_s),
                      [shared, injector, f, id] {
                        if (f.kind == NodeFaultKind::kCrash) {
                          if (shared->set_power) shared->set_power(id, true);
                        } else if (injector != nullptr) {
                          injector->set_isolated(id, false);
                        }
                        if (shared->on_node_restart) {
                          shared->on_node_restart(f, id);
                        }
                      });
             }
           });
  }

  for (const ClockFault& f : plan.clock_faults) {
    sim.at(sim::SimTime::from_sec_double(f.at_s), [shared, resolve, f] {
      const auto victim = resolve(f.reference, f.node);
      if (!victim) return;
      if (shared->clock_fault) {
        shared->clock_fault(*victim, f.step_us, f.drift_delta_ppm);
      }
      if (shared->on_clock_fault) shared->on_clock_fault(f, *victim);
    });
  }
}

}  // namespace sstsp::fault
