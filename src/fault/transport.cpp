#include "fault/transport.h"

#include "net/codec.h"
#include "sim/simulator.h"

namespace sstsp::fault {

FaultyTransport::FaultyTransport(net::Transport& inner, sim::Simulator& sim,
                                 FaultInjector& injector, mac::NodeId self)
    : inner_(inner), sim_(sim), injector_(injector), self_(self) {
  inner_.set_rx_handler(
      [this](std::span<const std::uint8_t> datagram, const net::RxMeta& meta) {
        on_datagram(datagram, meta);
      });
}

bool FaultyTransport::send(std::span<const std::uint8_t> datagram,
                           const net::TxMeta& meta) {
  return inner_.send(datagram, meta);
}

void FaultyTransport::set_rx_handler(RxHandler handler) {
  handler_ = std::move(handler);
}

const net::TransportStats& FaultyTransport::stats() const {
  return inner_.stats();
}

std::string FaultyTransport::describe() const {
  return inner_.describe() + " +faults";
}

void FaultyTransport::deliver(const std::vector<std::uint8_t>& bytes,
                              const net::RxMeta& meta) {
  if (handler_) handler_(std::span<const std::uint8_t>(bytes), meta);
}

void FaultyTransport::on_datagram(std::span<const std::uint8_t> datagram,
                                  const net::RxMeta& meta) {
  if (!handler_) return;
  const auto outcome = net::decode_datagram(datagram);
  if (!outcome.ok()) {
    // Let the node count the decode error itself.
    handler_(datagram, meta);
    return;
  }
  const auto verdict = injector_.on_delivery(
      sim_.now().to_sec(), outcome.frame->sender, self_);
  if (verdict.drop) return;

  std::vector<std::uint8_t> bytes(datagram.begin(), datagram.end());
  if (verdict.corrupt) corrupt_datagram(bytes);
  if (verdict.extra_delay_us > 0.0) {
    sim_.after(sim::SimTime::from_us_double(verdict.extra_delay_us),
               [this, bytes, meta] { deliver(bytes, meta); });
  } else {
    deliver(bytes, meta);
  }
  for (const double delay_us : verdict.duplicate_delays_us) {
    sim_.after(
        sim::SimTime::from_us_double(verdict.extra_delay_us + delay_us),
        [this, bytes, meta] { deliver(bytes, meta); });
  }
}

}  // namespace sstsp::fault
