#include "fault/plan.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace sstsp::fault {

namespace {

using obs::json::Value;
using obs::json::Writer;

/// Collects the field path and line of the first error.
struct ParseCtx {
  std::string* error;
  bool failed{false};

  void fail(const Value& at, const std::string& path, const std::string& msg) {
    if (failed) return;
    failed = true;
    if (error == nullptr) return;
    std::ostringstream os;
    if (at.line > 0) os << "line " << at.line << ": ";
    os << path << ": " << msg;
    *error = os.str();
  }
};

bool get_number(ParseCtx& ctx, const Value& parent, const std::string& path,
                std::string_view key, double* out) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;  // optional; keep default
  if (!v->is_number()) {
    ctx.fail(*v, path + "." + std::string(key), "expected a number");
    return false;
  }
  *out = v->number;
  return true;
}

bool get_bool(ParseCtx& ctx, const Value& parent, const std::string& path,
              std::string_view key, bool* out) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;
  if (v->kind != Value::Kind::kBool) {
    ctx.fail(*v, path + "." + std::string(key), "expected true or false");
    return false;
  }
  *out = v->boolean;
  return true;
}

bool node_id_from_number(double n, mac::NodeId* out) {
  if (n < 0 || n != std::floor(n) || n > 0xFFFFFFFEu) return false;
  *out = static_cast<mac::NodeId>(n);
  return true;
}

/// "node": <id> | "reference".  Sets *reference when the string form is used.
bool get_node(ParseCtx& ctx, const Value& parent, const std::string& path,
              std::string_view key, mac::NodeId* out, bool* reference) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;
  if (v->is_string()) {
    if (reference != nullptr && v->string == "reference") {
      *reference = true;
      return true;
    }
    ctx.fail(*v, path + "." + std::string(key),
             "expected a node id" +
                 std::string(reference != nullptr ? " or \"reference\"" : ""));
    return false;
  }
  if (!v->is_number() || !node_id_from_number(v->number, out)) {
    ctx.fail(*v, path + "." + std::string(key), "expected a node id");
    return false;
  }
  return true;
}

bool get_group(ParseCtx& ctx, const Value& parent, const std::string& path,
               std::string_view key, std::vector<mac::NodeId>* out) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) {
    ctx.fail(*v, path + "." + std::string(key), "expected an array of node ids");
    return false;
  }
  for (std::size_t i = 0; i < v->array.size(); ++i) {
    const Value& e = v->array[i];
    mac::NodeId id = mac::kNoNode;
    if (!e.is_number() || !node_id_from_number(e.number, &id)) {
      std::ostringstream os;
      os << path << "." << key << "[" << i << "]";
      ctx.fail(e, os.str(), "expected a node id");
      return false;
    }
    out->push_back(id);
  }
  return true;
}

/// Rejects keys outside `allowed` so typos fail loudly with the line named.
void check_keys(ParseCtx& ctx, const Value& obj, const std::string& path,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, member] : obj.object) {
    bool ok = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) ctx.fail(member, path + "." + key, "unknown key");
  }
}

std::optional<PacketFault> parse_packet(ParseCtx& ctx, const Value& v,
                                        const std::string& path) {
  if (!v.is_object()) {
    ctx.fail(v, path, "expected an object");
    return std::nullopt;
  }
  check_keys(ctx, v, path,
             {"kind", "start", "end", "probability", "from", "to",
              "delay_min_us", "delay_max_us", "gap_us", "copies",
              "copy_spacing_us"});
  PacketFault f;
  const Value* kind = v.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    ctx.fail(v, path + ".kind", "required string");
    return std::nullopt;
  }
  if (kind->string == "drop") {
    f.kind = PacketFaultKind::kDrop;
  } else if (kind->string == "duplicate") {
    f.kind = PacketFaultKind::kDuplicate;
  } else if (kind->string == "delay") {
    f.kind = PacketFaultKind::kDelay;
  } else if (kind->string == "reorder") {
    f.kind = PacketFaultKind::kReorder;
  } else if (kind->string == "corrupt") {
    f.kind = PacketFaultKind::kCorrupt;
  } else {
    ctx.fail(*kind, path + ".kind",
             "unknown fault kind '" + kind->string +
                 "' (drop|duplicate|delay|reorder|corrupt)");
    return std::nullopt;
  }
  double copies = static_cast<double>(f.copies);
  if (!get_number(ctx, v, path, "start", &f.start_s) ||
      !get_number(ctx, v, path, "end", &f.end_s) ||
      !get_number(ctx, v, path, "probability", &f.probability) ||
      !get_node(ctx, v, path, "from", &f.from, nullptr) ||
      !get_node(ctx, v, path, "to", &f.to, nullptr) ||
      !get_number(ctx, v, path, "delay_min_us", &f.delay_min_us) ||
      !get_number(ctx, v, path, "delay_max_us", &f.delay_max_us) ||
      !get_number(ctx, v, path, "gap_us", &f.gap_us) ||
      !get_number(ctx, v, path, "copies", &copies) ||
      !get_number(ctx, v, path, "copy_spacing_us", &f.copy_spacing_us)) {
    return std::nullopt;
  }
  f.copies = static_cast<int>(copies);
  if (f.probability < 0.0 || f.probability > 1.0) {
    ctx.fail(v, path + ".probability", "must be in [0, 1]");
    return std::nullopt;
  }
  if (f.delay_max_us < f.delay_min_us) f.delay_max_us = f.delay_min_us;
  return f;
}

std::optional<Partition> parse_partition(ParseCtx& ctx, const Value& v,
                                         const std::string& path) {
  if (!v.is_object()) {
    ctx.fail(v, path, "expected an object");
    return std::nullopt;
  }
  check_keys(ctx, v, path, {"start", "end", "group_a", "group_b", "asymmetric"});
  Partition p;
  if (!get_number(ctx, v, path, "start", &p.start_s) ||
      !get_number(ctx, v, path, "end", &p.end_s) ||
      !get_group(ctx, v, path, "group_a", &p.group_a) ||
      !get_group(ctx, v, path, "group_b", &p.group_b) ||
      !get_bool(ctx, v, path, "asymmetric", &p.asymmetric)) {
    return std::nullopt;
  }
  if (p.group_a.empty()) {
    ctx.fail(v, path + ".group_a", "required non-empty array");
    return std::nullopt;
  }
  return p;
}

std::optional<NodeFault> parse_node_fault(ParseCtx& ctx, const Value& v,
                                          const std::string& path) {
  if (!v.is_object()) {
    ctx.fail(v, path, "expected an object");
    return std::nullopt;
  }
  check_keys(ctx, v, path, {"kind", "node", "at", "restart"});
  NodeFault f;
  const Value* kind = v.find("kind");
  if (kind != nullptr) {
    if (!kind->is_string()) {
      ctx.fail(*kind, path + ".kind", "expected a string");
      return std::nullopt;
    }
    if (kind->string == "crash") {
      f.kind = NodeFaultKind::kCrash;
    } else if (kind->string == "pause") {
      f.kind = NodeFaultKind::kPause;
    } else {
      ctx.fail(*kind, path + ".kind",
               "unknown fault kind '" + kind->string + "' (crash|pause)");
      return std::nullopt;
    }
  }
  if (!get_node(ctx, v, path, "node", &f.node, &f.reference) ||
      !get_number(ctx, v, path, "at", &f.at_s) ||
      !get_number(ctx, v, path, "restart", &f.restart_s)) {
    return std::nullopt;
  }
  if (!f.reference && f.node == mac::kNoNode) {
    ctx.fail(v, path + ".node", "required (node id or \"reference\")");
    return std::nullopt;
  }
  return f;
}

std::optional<ClockFault> parse_clock_fault(ParseCtx& ctx, const Value& v,
                                            const std::string& path) {
  if (!v.is_object()) {
    ctx.fail(v, path, "expected an object");
    return std::nullopt;
  }
  check_keys(ctx, v, path, {"node", "at", "step_us", "drift_delta_ppm"});
  ClockFault f;
  if (!get_node(ctx, v, path, "node", &f.node, &f.reference) ||
      !get_number(ctx, v, path, "at", &f.at_s) ||
      !get_number(ctx, v, path, "step_us", &f.step_us) ||
      !get_number(ctx, v, path, "drift_delta_ppm", &f.drift_delta_ppm)) {
    return std::nullopt;
  }
  if (!f.reference && f.node == mac::kNoNode) {
    ctx.fail(v, path + ".node", "required (node id or \"reference\")");
    return std::nullopt;
  }
  return f;
}

void append_node(Writer& w, std::string_view key, bool reference,
                 mac::NodeId node) {
  w.key(key);
  if (reference) {
    w.value("reference");
  } else {
    w.value(static_cast<std::uint64_t>(node));
  }
}

}  // namespace

const char* to_string(PacketFaultKind kind) {
  switch (kind) {
    case PacketFaultKind::kDrop:
      return "drop";
    case PacketFaultKind::kDuplicate:
      return "duplicate";
    case PacketFaultKind::kDelay:
      return "delay";
    case PacketFaultKind::kReorder:
      return "reorder";
    case PacketFaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

const char* to_string(NodeFaultKind kind) {
  switch (kind) {
    case NodeFaultKind::kCrash:
      return "crash";
    case NodeFaultKind::kPause:
      return "pause";
  }
  return "?";
}

std::optional<FaultPlan> parse_plan(const Value& v, std::string* error) {
  ParseCtx ctx{error};
  if (!v.is_object()) {
    ctx.fail(v, "plan", "expected an object");
    return std::nullopt;
  }
  check_keys(ctx, v, "plan",
             {"seed", "packet", "partitions", "node_faults", "clock_faults"});
  if (ctx.failed) return std::nullopt;
  FaultPlan plan;
  double seed = static_cast<double>(plan.seed);
  if (!get_number(ctx, v, "plan", "seed", &seed)) return std::nullopt;
  plan.seed = static_cast<std::uint64_t>(seed);

  struct Section {
    const char* key;
    // NOLINTNEXTLINE(google-runtime-references) — local parse plumbing.
    bool (*parse)(ParseCtx&, const Value&, const std::string&, FaultPlan&);
  };
  const Section sections[] = {
      {"packet",
       [](ParseCtx& c, const Value& e, const std::string& p, FaultPlan& out) {
         auto f = parse_packet(c, e, p);
         if (f) out.packet.push_back(*f);
         return f.has_value();
       }},
      {"partitions",
       [](ParseCtx& c, const Value& e, const std::string& p, FaultPlan& out) {
         auto f = parse_partition(c, e, p);
         if (f) out.partitions.push_back(*f);
         return f.has_value();
       }},
      {"node_faults",
       [](ParseCtx& c, const Value& e, const std::string& p, FaultPlan& out) {
         auto f = parse_node_fault(c, e, p);
         if (f) out.node_faults.push_back(*f);
         return f.has_value();
       }},
      {"clock_faults",
       [](ParseCtx& c, const Value& e, const std::string& p, FaultPlan& out) {
         auto f = parse_clock_fault(c, e, p);
         if (f) out.clock_faults.push_back(*f);
         return f.has_value();
       }},
  };
  for (const Section& section : sections) {
    const Value* list = v.find(section.key);
    if (list == nullptr) continue;
    if (!list->is_array()) {
      ctx.fail(*list, section.key, "expected an array");
      return std::nullopt;
    }
    for (std::size_t i = 0; i < list->array.size(); ++i) {
      std::ostringstream path;
      path << section.key << "[" << i << "]";
      if (!section.parse(ctx, list->array[i], path.str(), plan)) {
        return std::nullopt;
      }
    }
  }
  if (ctx.failed) return std::nullopt;
  return plan;
}

std::optional<FaultPlan> parse_plan_text(std::string_view text,
                                         std::string* error) {
  auto v = obs::json::parse(text);
  if (!v) {
    if (error != nullptr) *error = "invalid JSON";
    return std::nullopt;
  }
  return parse_plan(*v, error);
}

std::optional<FaultPlan> load_plan(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string err;
  auto plan = parse_plan_text(buffer.str(), &err);
  if (!plan && error != nullptr) *error = path + ": " + err;
  return plan;
}

void append_json(const FaultPlan& plan, Writer& w) {
  w.begin_object();
  w.kv("seed", static_cast<std::uint64_t>(plan.seed));
  w.key("packet").begin_array();
  for (const PacketFault& f : plan.packet) {
    w.begin_object();
    w.kv("kind", to_string(f.kind));
    w.kv("start", f.start_s);
    w.kv("end", f.end_s);
    w.kv("probability", f.probability);
    if (f.from != mac::kNoNode) w.kv("from", static_cast<std::uint64_t>(f.from));
    if (f.to != mac::kNoNode) w.kv("to", static_cast<std::uint64_t>(f.to));
    if (f.kind == PacketFaultKind::kDelay) {
      w.kv("delay_min_us", f.delay_min_us);
      w.kv("delay_max_us", f.delay_max_us);
    }
    if (f.kind == PacketFaultKind::kReorder) w.kv("gap_us", f.gap_us);
    if (f.kind == PacketFaultKind::kDuplicate) {
      w.kv("copies", f.copies);
      w.kv("copy_spacing_us", f.copy_spacing_us);
    }
    w.end_object();
  }
  w.end_array();
  w.key("partitions").begin_array();
  for (const Partition& p : plan.partitions) {
    w.begin_object();
    w.kv("start", p.start_s);
    w.kv("end", p.end_s);
    w.key("group_a").begin_array();
    for (const mac::NodeId id : p.group_a) {
      w.value(static_cast<std::uint64_t>(id));
    }
    w.end_array();
    w.key("group_b").begin_array();
    for (const mac::NodeId id : p.group_b) {
      w.value(static_cast<std::uint64_t>(id));
    }
    w.end_array();
    w.kv("asymmetric", p.asymmetric);
    w.end_object();
  }
  w.end_array();
  w.key("node_faults").begin_array();
  for (const NodeFault& f : plan.node_faults) {
    w.begin_object();
    w.kv("kind", to_string(f.kind));
    append_node(w, "node", f.reference, f.node);
    w.kv("at", f.at_s);
    w.kv("restart", f.restart_s);
    w.end_object();
  }
  w.end_array();
  w.key("clock_faults").begin_array();
  for (const ClockFault& f : plan.clock_faults) {
    w.begin_object();
    append_node(w, "node", f.reference, f.node);
    w.kv("at", f.at_s);
    w.kv("step_us", f.step_us);
    w.kv("drift_delta_ppm", f.drift_delta_ppm);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string to_json_text(const FaultPlan& plan) {
  std::ostringstream os;
  Writer w(os);
  append_json(plan, w);
  return os.str();
}

}  // namespace sstsp::fault
