// Per-fault recovery accounting.
//
// RecoveryTracker is attached to every honest station as a trace observer
// (alongside the event trace, metrics, invariant monitor and lifecycle
// tracer) and to the runner's max-diff sampling loop.  For each disruptive
// fault it opens a record and closes it from protocol evidence:
//
//   * reference loss  -> re-election latency: from the fault instant to the
//     next kElectionWon, and in beacon periods from the lost reference's
//     last transmission (the paper's "l+1 BP" bound counts silent BPs);
//   * partition heal / clock fault -> re-sync latency: first max-diff sample
//     back under the sync threshold after the fault (heal) time;
//   * forged/invalid frames -> rejection counts (µTESLA + guard checks).
//
// post_fault_steady_max_us tracks the worst network-wide error observed
// after every pending record has recovered — the "post-recovery steady
// error" the acceptance criteria bound, excluding the transient spike
// between fault and recovery.
#pragma once

#include <string>
#include <vector>

#include "fault/injector.h"
#include "trace/event_trace.h"

namespace sstsp::fault {

/// One fault -> recovery episode.
struct RecoveryRecord {
  std::string fault;             ///< e.g. "reference-crash", "partition-heal"
  mac::NodeId node{mac::kNoNode};
  double fault_t_s{0.0};         ///< fault (or heal) instant, run seconds
  bool needs_election{false};
  double reelection_s{-1.0};     ///< fault -> kElectionWon; -1 until seen
  double reelection_bps{-1.0};   ///< silent BPs from the lost ref's last tx
  bool needs_attach{false};      ///< cluster runs: wait for re-attachment
  bool detach_seen{false};       ///< an attach sample dipped below 1 since
  double reattach_s{-1.0};       ///< fault -> all clusters re-attached
  double resync_s{-1.0};         ///< fault -> first in-sync sample
  bool recovered{false};
};

struct RecoveryReport {
  std::vector<RecoveryRecord> records;
  FaultStats packet_faults;
  std::uint64_t rejected_frames{0};  ///< µTESLA/guard rejections, all nodes
  double post_fault_steady_max_us{-1.0};  ///< -1: never reached steady state

  void append_json(obs::json::Writer& w) const;
};

class RecoveryTracker {
 public:
  RecoveryTracker(double beacon_period_s, double sync_threshold_us);

  /// Opens a record that waits for a re-election and then re-sync.
  void expect_reelection(const std::string& fault, mac::NodeId node,
                         double t_s);
  /// Opens a record that waits for re-sync only (partition heal, clock
  /// fault).  t_s may be in the future (heal time known at plan load).
  void expect_resync(const std::string& fault, mac::NodeId node, double t_s);
  /// Opens a record that waits for cluster re-attachment (gateway crash /
  /// bridge outage) and then re-sync.  Closed by on_cluster_attach_sample.
  void expect_reattach(const std::string& fault, mac::NodeId node, double t_s);

  /// Station trace-observer entry point (5th observer in the fan-out).
  void on_trace_event(const trace::TraceEvent& event);

  /// Runner sampling hook: network-wide max pairwise clock difference.
  void on_max_diff_sample(double t_s, double max_diff_us);

  /// Cluster-run sampling hook: fraction of awake honest nodes currently
  /// attached to the root timescale.  Closes pending reattach records once
  /// the fraction returns to 1.
  void on_cluster_attach_sample(double t_s, double attached_fraction);

  /// Folds in the injector's packet counters; call once before report().
  void finalize(const FaultStats& stats);

  [[nodiscard]] const RecoveryReport& report() const { return report_; }

  /// True while any opened record has not yet recovered (telemetry's
  /// recovery_pending flag).
  [[nodiscard]] bool pending() const {
    for (const RecoveryRecord& r : report_.records) {
      if (!r.recovered) return true;
    }
    return false;
  }

 private:
  double bp_s_;
  double threshold_us_;
  RecoveryReport report_;
  // Last beacon transmission per node, for the silent-BP count.
  std::vector<double> last_tx_s_;
  // Silence start latched when each pending election record opens.
  std::vector<double> silence_start_s_;
  double steady_max_us_{-1.0};
};

}  // namespace sstsp::fault
