// Delayed key disclosure adversary (internal): a compromised node with a
// valid hash chain that emits beacons *late* while stamping them with the
// on-schedule instant, abusing µTESLA's disclosure delay (§4).  Each beacon
// claims to be `delay_us` fresher than it physically is; a receiver that
// accepted it would adopt a timeline `delay_us` behind real time.
//
// The defense this exercises is exactly the paper's layered check: for small
// delays the guard-time check (§3.4) rejects the stamp, and once the delay
// exceeds the interval slack the µTESLA interval check (§3.3) fires first —
// the key for the claimed interval is, by arrival time, already disclosed.
// Run it and watch rejected_guard / rejected_interval climb while the honest
// error stays flat.
#pragma once

#include "core/sstsp.h"

namespace sstsp::attack {

struct DelayedDisclosureParams {
  double start_s = 30.0;
  double end_s = 1e18;
  /// How late each beacon is emitted — and how fresh its stamp pretends to
  /// be.  Values beyond the guard time get rejected; values beyond the
  /// µTESLA interval slack get rejected one check earlier.
  double delay_us = 3000.0;
};

class DelayedDisclosureAttacker final : public core::Sstsp {
 public:
  DelayedDisclosureAttacker(proto::Station& station,
                            const core::SstspConfig& cfg,
                            core::KeyDirectory& directory,
                            DelayedDisclosureParams params)
      : Sstsp(station, cfg, directory, Options{true, false}),
        params_(params) {}

  void start() override {
    Sstsp::start();
    arm_window();
  }

  [[nodiscard]] bool attacking() const { return attacking_; }

 protected:
  [[nodiscard]] double emission_advance_us() const override {
    // Negative advance: emit delay_us behind the nominal schedule.
    return attacking_ ? -params_.delay_us : 0.0;
  }

  [[nodiscard]] double timestamp_skew_us() const override {
    // Stamp the *scheduled* instant, not the (late) emission instant: the
    // beacon's claimed time is delay_us ahead of its physical freshness.
    return attacking_ ? -params_.delay_us : 0.0;
  }

  [[nodiscard]] bool ignore_carrier() const override { return attacking_; }
  [[nodiscard]] bool never_demote() const override { return attacking_; }

 private:
  void arm_window() {
    auto& sim = station_.sim();
    sim.at(sim::SimTime::from_sec_double(params_.start_s), [this] {
      attacking_ = true;
      force_reference_role();
    });
    sim.at(sim::SimTime::from_sec_double(params_.end_s), [this] {
      attacking_ = false;
      restart_coarse();
    });
  }

  DelayedDisclosureParams params_;
  bool attacking_{false};
};

}  // namespace sstsp::attack
