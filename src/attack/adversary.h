// Adversary registry: one factory-based interface for every attacker the
// runners can deploy, replacing the old per-kind enum + switch plumbing.
//
// An adversary is any proto::SyncProtocol implementation mounted on the
// extra attacker station; the registry maps a stable name ("tsf-slow",
// "internal-ref", "replay", "forge", "delayed-disclosure") to a factory, so
// new adversaries — including fault-driven ones like replay-under-loss
// (replay adversary + a FaultPlan with a drop directive) — plug in without
// touching run::Scenario or the runners.
//
// Builtins are registered explicitly in the registry constructor (not via
// static initializers, which a static library would silently drop).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "attack/internal_reference.h"
#include "attack/tsf_attacker.h"

namespace sstsp::proto {
class Station;
class SyncProtocol;
}  // namespace sstsp::proto

namespace sstsp::obs::json {
struct Value;
}  // namespace sstsp::obs::json

namespace sstsp::attack {

/// Everything a factory may draw on.  `params` is the parsed value of the
/// scenario's attack-params JSON (nullptr when none was given) and is only
/// valid for the duration of the make() call.
struct AdversaryContext {
  proto::Station& station;
  core::KeyDirectory& directory;
  const core::SstspConfig& sstsp;
  TsfAttackParams tsf{};
  SstspAttackParams internal{};
  const obs::json::Value* params{nullptr};
};

struct AdversaryInfo {
  std::string description;
  /// Oscillator the adversary deploys with, as a fraction of the scenario's
  /// max drift (NaN: drawn from the same distribution as honest nodes).
  /// tsf-slow pins 0.9 — worst-case-fast hardware, see tsf_attacker.h.
  double drift_factor;
  std::function<std::unique_ptr<proto::SyncProtocol>(const AdversaryContext&)>
      make;
};

class AdversaryRegistry {
 public:
  /// Process-wide registry, pre-populated with the builtins.
  static AdversaryRegistry& instance();

  void add(std::string name, AdversaryInfo info);
  [[nodiscard]] const AdversaryInfo* find(std::string_view name) const;
  /// Registered names, sorted (for error messages and --help).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AdversaryRegistry();  // registers builtins

  std::vector<std::pair<std::string, AdversaryInfo>> entries_;
};

/// True when `name` is a registered adversary (empty = no attack, not known).
[[nodiscard]] bool adversary_known(std::string_view name);

/// Sorted registered names.
[[nodiscard]] std::vector<std::string> adversary_names();

/// The adversary's pinned drift factor; NaN when it draws like an honest
/// node (or the name is unknown/empty).
[[nodiscard]] double adversary_drift_factor(std::string_view name);

/// Builds the adversary; nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<proto::SyncProtocol> make_adversary(
    std::string_view name, const AdversaryContext& ctx);

}  // namespace sstsp::attack
