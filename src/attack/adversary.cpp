#include "attack/adversary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "attack/delayed_disclosure.h"
#include "attack/replay.h"
#include "obs/json.h"

namespace sstsp::attack {

namespace {

constexpr double kHonestDrift = std::numeric_limits<double>::quiet_NaN();

/// Numeric override from the attack-params JSON; fallback when absent.
double num_param(const obs::json::Value* params, std::string_view key,
                 double fallback) {
  if (params == nullptr) return fallback;
  const obs::json::Value* v = params->find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->number;
}

}  // namespace

AdversaryRegistry::AdversaryRegistry() {
  add("tsf-slow",
      {"TSF slow-beacon attacker: floods contention with slower timestamps "
       "so the honest TSF network free-runs (paper Fig. 3)",
       0.9,  // deploys with worst-case-fast hardware, see tsf_attacker.h
       [](const AdversaryContext& ctx) -> std::unique_ptr<proto::SyncProtocol> {
         TsfAttackParams p = ctx.tsf;
         p.start_s = num_param(ctx.params, "start", p.start_s);
         p.end_s = num_param(ctx.params, "end", p.end_s);
         p.slow_offset_us =
             num_param(ctx.params, "slow_offset_us", p.slow_offset_us);
         p.timer_advance_us =
             num_param(ctx.params, "timer_advance_us", p.timer_advance_us);
         p.burst_count = static_cast<int>(
             num_param(ctx.params, "burst_count", p.burst_count));
         p.burst_spacing_us =
             num_param(ctx.params, "burst_spacing_us", p.burst_spacing_us);
         return std::make_unique<TsfSlowBeaconAttacker>(ctx.station, p);
       }});
  add("internal-ref",
      {"internal SSTSP attacker: seizes the reference role and drags the "
       "network timeline within guard bounds (paper Fig. 4)",
       kHonestDrift,
       [](const AdversaryContext& ctx) -> std::unique_ptr<proto::SyncProtocol> {
         SstspAttackParams p = ctx.internal;
         p.start_s = num_param(ctx.params, "start", p.start_s);
         p.end_s = num_param(ctx.params, "end", p.end_s);
         p.advance_us = num_param(ctx.params, "advance_us", p.advance_us);
         p.skew_rate_us_per_s =
             num_param(ctx.params, "skew", p.skew_rate_us_per_s);
         p.skew_ramp_s = num_param(ctx.params, "skew_ramp_s", p.skew_ramp_s);
         return std::make_unique<SstspInternalAttacker>(
             ctx.station, ctx.sstsp, ctx.directory, p);
       }});
  add("replay",
      {"external replay attacker: re-transmits captured beacons some BPs "
       "later; µTESLA's interval check rejects them (§4)",
       kHonestDrift,
       [](const AdversaryContext& ctx) -> std::unique_ptr<proto::SyncProtocol> {
         ReplayParams p;
         p.start_s = num_param(ctx.params, "start", ctx.internal.start_s);
         p.end_s = num_param(ctx.params, "end", ctx.internal.end_s);
         p.delay_bps = static_cast<int>(
             num_param(ctx.params, "delay_bps", p.delay_bps));
         p.extra_delay_us =
             num_param(ctx.params, "extra_delay_us", p.extra_delay_us);
         return std::make_unique<ReplayAttacker>(ctx.station, p);
       }});
  add("forge",
      {"external forger: emits SSTSP-shaped beacons with garbage MACs under "
       "an unanchored identity; rejected at the disclosed-key step",
       kHonestDrift,
       [](const AdversaryContext& ctx) -> std::unique_ptr<proto::SyncProtocol> {
         ExternalForger::Params p;
         p.period_s = num_param(ctx.params, "period_s", p.period_s);
         const double spoofed = num_param(ctx.params, "spoofed", -1.0);
         if (spoofed >= 0.0) p.spoofed = static_cast<mac::NodeId>(spoofed);
         return std::make_unique<ExternalForger>(ctx.station, p);
       }});
  add("delayed-disclosure",
      {"internal delayed-key-disclosure attacker: emits late beacons stamped "
       "on schedule, abusing the µTESLA disclosure delay (§4)",
       kHonestDrift,
       [](const AdversaryContext& ctx) -> std::unique_ptr<proto::SyncProtocol> {
         DelayedDisclosureParams p;
         p.start_s = num_param(ctx.params, "start", ctx.internal.start_s);
         p.end_s = num_param(ctx.params, "end", ctx.internal.end_s);
         p.delay_us = num_param(ctx.params, "delay_us", p.delay_us);
         return std::make_unique<DelayedDisclosureAttacker>(
             ctx.station, ctx.sstsp, ctx.directory, p);
       }});
}

AdversaryRegistry& AdversaryRegistry::instance() {
  static AdversaryRegistry registry;
  return registry;
}

void AdversaryRegistry::add(std::string name, AdversaryInfo info) {
  for (auto& [existing, entry] : entries_) {
    if (existing == name) {
      entry = std::move(info);  // latest registration wins
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(info));
}

const AdversaryInfo* AdversaryRegistry::find(std::string_view name) const {
  for (const auto& [existing, entry] : entries_) {
    if (existing == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> AdversaryRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

bool adversary_known(std::string_view name) {
  return AdversaryRegistry::instance().find(name) != nullptr;
}

std::vector<std::string> adversary_names() {
  return AdversaryRegistry::instance().names();
}

double adversary_drift_factor(std::string_view name) {
  const AdversaryInfo* info = AdversaryRegistry::instance().find(name);
  return info == nullptr ? kHonestDrift : info->drift_factor;
}

std::unique_ptr<proto::SyncProtocol> make_adversary(
    std::string_view name, const AdversaryContext& ctx) {
  const AdversaryInfo* info = AdversaryRegistry::instance().find(name);
  if (info == nullptr || !info->make) return nullptr;
  return info->make(ctx);
}

}  // namespace sstsp::attack
