// Replay attacker (external): records valid SSTSP beacons off the air and
// re-transmits them verbatim a configurable number of BPs later, hoping to
// magnify the offset between declared and actual time (§4).  µTESLA defeats
// this: by replay time the receiver's interval check fails (the beacon's
// interval is stale and its key already disclosed).  Exercised by
// tests/attack_replay_test.cpp and examples/attack_forensics.cpp.
#pragma once

#include <optional>

#include "protocols/station.h"
#include "protocols/sync_protocol.h"

namespace sstsp::attack {

struct ReplayParams {
  double start_s = 100.0;
  double end_s = 1e18;
  /// Delay between capture and replay, in beacon periods ...
  int delay_bps = 3;
  /// ... plus a sub-interval component.  delay_bps = 0 with a sub-BP/2
  /// extra delay models the paper's §4 *pulse-delay* attack: the replayed
  /// frame still claims the current interval (so µTESLA's interval check
  /// passes), but its timestamp is now `extra_delay_us` behind the
  /// receiver's clock — exactly what the guard time is for.
  double extra_delay_us = 0.0;
};

class ReplayAttacker final : public proto::SyncProtocol {
 public:
  ReplayAttacker(proto::Station& station, ReplayParams params)
      : SyncProtocol(station), params_(params) {}

  void start() override { running_ = true; }
  void stop() override { running_ = false; }

  void on_receive(const mac::Frame& frame, const mac::RxInfo&) override {
    if (!running_ || !frame.is_sstsp()) return;
    const double t = station_.sim().now().to_sec();
    if (t < params_.start_s || t >= params_.end_s) return;

    // Capture and schedule verbatim retransmission.
    const auto& phy = station_.channel().phy();
    const sim::SimTime delay =
        phy.beacon_period * params_.delay_bps +
        sim::SimTime::from_us_double(params_.extra_delay_us);
    station_.sim().after(delay, [this, frame] {
      if (!running_) return;
      station_.transmit(frame, station_.channel().phy().sstsp_beacon_duration);
      ++stats_.beacons_sent;
    });
  }

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return station_.hw().read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override { return false; }

 private:
  ReplayParams params_;
  bool running_{false};
};

/// External forger: transmits SSTSP-shaped beacons under an identity with
/// no published anchor (or garbage MACs under a spoofed identity).  The
/// receiver pipeline rejects these at the disclosed-key step.
class ExternalForger final : public proto::SyncProtocol {
 public:
  struct Params {
    double period_s = 0.1;      ///< forgery rate
    mac::NodeId spoofed = mac::kNoNode;  ///< kNoNode: use own (unknown) id
  };

  ExternalForger(proto::Station& station, Params params)
      : SyncProtocol(station), params_(params) {}

  void start() override {
    running_ = true;
    schedule_next();
  }
  void stop() override { running_ = false; }

  void on_receive(const mac::Frame&, const mac::RxInfo&) override {}

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return station_.hw().read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override { return false; }

 private:
  void schedule_next() {
    station_.sim().after(sim::SimTime::from_sec_double(params_.period_s),
                         [this] {
                           if (!running_) return;
                           forge();
                           schedule_next();
                         });
  }

  void forge() {
    const auto& phy = station_.channel().phy();
    mac::SstspBeaconBody body;
    body.timestamp_us = static_cast<std::int64_t>(
        station_.hw().read_us(station_.sim().now()));
    body.interval = static_cast<std::int64_t>(
        station_.sim().now().to_us() / phy.beacon_period.to_us() + 0.5);
    // Garbage MAC and key: the attacker has no chain material.
    for (auto& b : body.mac) b = static_cast<std::uint8_t>(station_.rng()());
    for (auto& b : body.disclosed_key) {
      b = static_cast<std::uint8_t>(station_.rng()());
    }
    mac::Frame frame;
    frame.sender =
        params_.spoofed == mac::kNoNode ? station_.id() : params_.spoofed;
    frame.air_bytes = phy.sstsp_beacon_bytes;
    frame.body = body;
    station_.transmit(std::move(frame), phy.sstsp_beacon_duration);
    ++stats_.beacons_sent;
  }

  Params params_;
  bool running_{false};
};

}  // namespace sstsp::attack
