// The §5 attack against TSF: during the attack window the node beacons at
// every BP "without delay", carrying a timestamp deliberately *slower* than
// its own clock, with the aim of (a) winning/wrecking every beacon
// contention so the genuinely fast stations are silenced, and (b) never
// being adopted (its timestamps trail every honest clock).  The honest
// network then free-runs and drifts apart — paper Fig. 3 shows the TSF
// error exploding to ~2*10^4 us during the attack window.
//
// Winning the contention under a faithful CSMA model takes more than
// "transmit at slot 0": the attacker must place transmissions *inside* the
// honest stations' beacon generation windows, or its frames are delivered
// before their TBTTs and forgotten.  The implementation therefore
//
//   * clamps its TSF timer (in both directions — it is malicious, the
//     forward-only rule does not bind it) to `timer_advance_us` ahead of
//     every timestamp it hears, so its TBTT leads the fastest honest TBTT
//     by a small, known margin;
//   * transmits a short burst of `burst_count` beacons spaced
//     `burst_spacing_us` apart from its TBTT, blanketing the 280 us honest
//     window: stations either sense the medium busy at backoff expiry,
//     receive a (never-adopted) beacon and cancel their own, or collide
//     with a burst frame;
//   * is deployed with worst-case-fast oscillator hardware (the scenario
//     runner pins it to +max_drift_ppm) so the margin erodes as slowly as
//     possible between the rare honest escapes that re-anchor the clamp.
//
// Outside the window the node behaves as a standard TSF station.
#pragma once

#include "protocols/tsf_family.h"

namespace sstsp::attack {

struct TsfAttackParams {
  double start_s = 400.0;
  double end_s = 600.0;
  /// How much slower than the attacker's own timer the forged timestamps
  /// are; anything comfortably above the honest spread works.
  double slow_offset_us = 500.0;
  /// Margin the attacker keeps ahead of the newest heard timestamp.
  double timer_advance_us = 25.0;
  /// Beacons per BP and their spacing: coverage of the honest window.
  /// 8 x 85 us blankets ~630 us — the full 31-slot window plus the spread
  /// the free-running victims accumulate between escapes.
  int burst_count = 8;
  double burst_spacing_us = 85.0;
};

class TsfSlowBeaconAttacker final : public proto::TsfFamilyBase {
 public:
  TsfSlowBeaconAttacker(proto::Station& station, TsfAttackParams params)
      : TsfFamilyBase(station), params_(params) {}

  [[nodiscard]] bool attacking() const {
    const double t = station_.sim().now().to_sec();
    return t >= params_.start_s && t < params_.end_s;
  }

  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override {
    TsfFamilyBase::on_receive(frame, rx);
    if (!attacking() || !frame.is_tsf()) return;
    // Re-anchor just ahead of whatever got through.  Forward-only: the
    // escapes worth chasing come from the fast cohort; anchoring down onto
    // a straggler's beacon would move the burst away from the fast
    // stations' windows and free them.  (The attacker's own fast oscillator
    // plus the ~300 us burst coverage absorbs the slow upward overshoot.)
    const double ts_est =
        static_cast<double>(frame.tsf().timestamp_us) + rx.nominal_delay_us;
    const double target = ts_est + params_.timer_advance_us;
    if (target > timer_.read_us(rx.delivered)) {
      timer_.set_value(rx.delivered, target);
      schedule_next_tbtt();
    }
  }

 protected:
  [[nodiscard]] bool participates(std::uint64_t) override {
    // Honest contention only outside the attack window; during the attack
    // the burst machinery below does the transmitting.
    return !attacking();
  }

  void on_bp_begin(std::uint64_t) override {
    if (!attacking()) return;
    for (int k = 0; k < params_.burst_count; ++k) {
      station_.sim().after(
          sim::SimTime::from_us_double(k * params_.burst_spacing_us),
          [this] { transmit_forged(); });
    }
  }

 private:
  void transmit_forged() {
    if (!attacking()) return;
    const sim::SimTime now = station_.sim().now();
    const auto& phy = station_.channel().phy();
    mac::Frame frame;
    frame.sender = station_.id();
    frame.air_bytes = phy.tsf_beacon_bytes;
    frame.body = mac::TsfBeaconBody{
        timer_.read_counter(now) -
        static_cast<std::int64_t>(params_.slow_offset_us)};
    station_.transmit(std::move(frame), phy.tsf_beacon_duration);
    ++stats_.beacons_sent;
  }

  TsfAttackParams params_;
};

}  // namespace sstsp::attack
