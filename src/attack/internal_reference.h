// The §5 attack against SSTSP: an *internal* attacker (compromised node
// with a valid, published hash chain) seizes the reference role and feeds
// the network timestamps that run slower than real time.
//
// Takeover mechanics: during the attack window the node forces itself into
// the reference role and emits `advance_us` ahead of the nominal schedule,
// ignoring carrier sense.  The honest reference, arriving at the nominal
// instant, senses the medium busy, defers, receives the (cryptographically
// valid) beacon and yields the role (RULE R).  From then on every node
// follows the attacker.
//
// Dragging mechanics: the attacker maintains a *virtual* clock that runs
// slower than its real (adjusted) clock by `skew_rate` and runs the
// reference role against that virtual clock — beacons are emitted when the
// virtual clock reads T^j and stamped with the virtual reading.  Each
// individual timestamp therefore differs from a receiver's adjusted clock
// by only a few microseconds (it passes the guard-time check, exactly the
// adversary §5 postulates: "we carefully configure the erroneous time
// values such that they can pass the guard time check"), yet the whole
// network is gradually towed off true time.  The paper's claim, reproduced
// in bench/fig4_sstsp_attack.cpp, is that honest nodes nevertheless remain
// *mutually* synchronized: they all follow the same dragged virtual clock,
// so the max pairwise difference stays bounded — the attacker cannot
// desynchronize the network, only bias its common timeline.
#pragma once

#include <algorithm>

#include "core/sstsp.h"

namespace sstsp::attack {

struct SstspAttackParams {
  double start_s = 400.0;
  double end_s = 600.0;
  /// Emission lead over the honest schedule (must exceed the CCA time so
  /// the honest reference reliably defers).
  double advance_us = 20.0;
  /// How fast the forged clock falls behind the schedule.
  double skew_rate_us_per_s = 50.0;
  /// Seconds over which the skew rate ramps from 0 to its full value: a
  /// sudden rate change is itself a per-beacon step the guard would catch.
  double skew_ramp_s = 2.0;
};

class SstspInternalAttacker final : public core::Sstsp {
 public:
  SstspInternalAttacker(proto::Station& station,
                        const core::SstspConfig& cfg,
                        core::KeyDirectory& directory,
                        SstspAttackParams params)
      : Sstsp(station, cfg, directory, Options{true, false}),
        params_(params) {}

  void start() override {
    Sstsp::start();
    arm_window();
  }

  [[nodiscard]] bool attacking() const { return attacking_; }

 protected:
  /// Accumulated lag of the virtual clock behind the attacker's adjusted
  /// clock.  The lag starts accruing a few BPs after the window opens: the
  /// takeover beacons themselves must land *ahead* of the honest reference
  /// (advance_us early) or it never defers and the role is never seized.
  [[nodiscard]] double drag_us() const {
    if (!attacking_) return 0.0;
    constexpr double kTakeoverGraceS = 0.3;
    const double t = std::max(
        0.0, station_.sim().now().to_sec() - params_.start_s - kTakeoverGraceS);
    const double ramp = std::max(params_.skew_ramp_s, 1e-9);
    // Integrated linear ramp: quadratic head, linear tail.
    if (t < ramp) {
      return params_.skew_rate_us_per_s * t * t / (2.0 * ramp);
    }
    return params_.skew_rate_us_per_s * (t - ramp / 2.0);
  }

  [[nodiscard]] double emission_advance_us() const override {
    // Emit when the *virtual* clock reads T^j (i.e. `drag` late on the real
    // schedule), still `advance_us` early so any honest emitter defers.
    return attacking_ ? params_.advance_us - drag_us() : 0.0;
  }

  [[nodiscard]] double timestamp_skew_us() const override {
    // Stamp the virtual clock: adjusted reading minus the drag.  Stamps
    // stay consistent with the emission instants, so receivers' guard
    // checks pass while the common timeline is towed.
    return attacking_ ? -drag_us() : 0.0;
  }

  [[nodiscard]] bool ignore_carrier() const override { return attacking_; }
  [[nodiscard]] bool never_demote() const override { return attacking_; }

 private:
  void arm_window() {
    auto& sim = station_.sim();
    sim.at(sim::SimTime::from_sec_double(params_.start_s), [this] {
      attacking_ = true;
      force_reference_role();
    });
    sim.at(sim::SimTime::from_sec_double(params_.end_s), [this] {
      attacking_ = false;
      // The attacker's own clock never followed the timeline it dragged the
      // network onto; rejoin like any node with a stale clock would.
      restart_coarse();
    });
  }

  SstspAttackParams params_;
  bool attacking_{false};
};

}  // namespace sstsp::attack
