#include "analysis/models.h"

#include <algorithm>
#include <cmath>

namespace sstsp::analysis {

double lemma1_contraction_ratio(int m, double bp_us, double d_us) {
  if (m <= 1) {
    return d_us / (bp_us - d_us);  // paper's m = 1 case
  }
  return (static_cast<double>(m - 1) * bp_us) /
         (static_cast<double>(m) * bp_us - d_us);
}

int lemma1_convergence_bps(int m, double d0_us, double delta_us, double bp_us,
                           double d_us) {
  if (d0_us <= delta_us) return 0;
  const double ratio = lemma1_contraction_ratio(m, bp_us, d_us);
  if (ratio <= 0.0) return 1;  // one adjustment nulls the error
  if (ratio >= 1.0) return -1;  // does not converge (d too large)
  return static_cast<int>(
      std::ceil(std::log(delta_us / d0_us) / std::log(ratio)));
}

double lemma2_blowup_ratio(int m, int l) {
  return (static_cast<double>(m) - static_cast<double>(l) - 3.0) /
         static_cast<double>(m);
}

int lemma2_optimal_m(int l) { return l + 3; }

double steady_error_bound_us(double epsilon_us) { return 2.0 * epsilon_us; }

double reference_change_error_bound_us(int m, int l, double pre_err_us,
                                       double epsilon_us) {
  return std::fabs(lemma2_blowup_ratio(m, l)) * pre_err_us +
         2.0 * epsilon_us;
}

double tsf_success_probability(int n, int w) {
  // P(exactly one station draws the occupied minimum slot): sum over the
  // value k of the minimum slot of
  //   C(n,1) * (1/(w+1)) * P(remaining n-1 all strictly above k)
  // with the "all above" probabilities nested properly:
  //   P(min = k, unique) = n * q^{n-1}(k+1 above) ... computed directly:
  const double slots = static_cast<double>(w) + 1.0;
  double p = 0.0;
  for (int k = 0; k <= w; ++k) {
    const double above = (static_cast<double>(w) - k) / slots;  // P(slot > k)
    p += static_cast<double>(n) * (1.0 / slots) *
         std::pow(above, static_cast<double>(n - 1));
  }
  return p;
}

double tsf_expected_drought_bps(int n, int w) {
  const double p = tsf_success_probability(n, w);
  return (p > 0.0) ? 1.0 / p : 1e18;
}

double tsf_expected_drift_us(int n, int w, double bp_us,
                             double max_rel_drift_ppm) {
  return tsf_expected_drought_bps(n, w) * bp_us * 1e-6 * max_rel_drift_ppm;
}

OverheadModel sstsp_overhead(double bp_us, std::size_t chain_length,
                             std::size_t beacon_bytes) {
  OverheadModel model;
  model.beacons_per_second = 1e6 / bp_us;  // exactly one beacon per BP
  model.bytes_per_second =
      model.beacons_per_second * static_cast<double>(beacon_bytes);
  model.chain_digests_full = chain_length;
  model.chain_digests_fractal =
      static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(
              chain_length, 2))))) +
      1;
  // Two buffered beacons (timestamp 8 + interval 8 + level 1 + mac 16 +
  // bookkeeping ~16 each) plus the cached verified key (32) and its
  // position (8).
  model.receiver_buffer_bytes = 2 * (8 + 8 + 1 + 16 + 16) + 32 + 8;
  return model;
}

}  // namespace sstsp::analysis
