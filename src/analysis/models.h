// Closed-form analytical models of the protocols' behaviour, used three
// ways: (a) property tests compare simulation against prediction, (b) the
// abl_model_check bench reports model-vs-measured side by side, and (c)
// users can size parameters (m, l, guard, chain length) without running
// simulations.
//
// Sources: the paper's Lemma 1 / Lemma 2 (SSTSP convergence), its §3.4
// overhead accounting, and standard balls-into-bins analysis of the IEEE
// 802.11 beacon contention window for the TSF side.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sstsp::analysis {

// ---------------------------------------------------------------- SSTSP

/// Lemma 1 contraction ratio D^{n+1}/D^n for aggressiveness m, beacon
/// period bp_us and worst-case emission jitter d_us.
[[nodiscard]] double lemma1_contraction_ratio(int m, double bp_us,
                                              double d_us = 0.0);

/// Lemma 1 corollary: beacon periods needed to shrink an initial offset
/// `d0_us` below `delta_us`.
[[nodiscard]] int lemma1_convergence_bps(int m, double d0_us, double delta_us,
                                         double bp_us, double d_us = 0.0);

/// Lemma 2: error ratio D+/D- after the reference changes (the node
/// free-runs for l+3 BPs after its last adjustment).
[[nodiscard]] double lemma2_blowup_ratio(int m, int l);

/// The m minimizing |lemma2_blowup_ratio| (the paper's l+3).
[[nodiscard]] int lemma2_optimal_m(int l);

/// Steady-state synchronization error bound from the paper's analysis:
/// 2 * epsilon, with epsilon the timestamp-estimate error.
[[nodiscard]] double steady_error_bound_us(double epsilon_us);

/// Error bound immediately after a reference change (paper §3.4):
/// |m-l-3|/m * pre-change error + 2 epsilon.
[[nodiscard]] double reference_change_error_bound_us(int m, int l,
                                                     double pre_err_us,
                                                     double epsilon_us);

// ------------------------------------------------------------------ TSF

/// Probability that exactly one of n contenders draws the minimum slot of
/// a (w+1)-slot beacon generation window — i.e. that the BP produces one
/// clean beacon under idealized slotted contention.
[[nodiscard]] double tsf_success_probability(int n, int w);

/// Expected BPs between successful beacons (geometric in the above).
[[nodiscard]] double tsf_expected_drought_bps(int n, int w);

/// Expected steady-state drift scale for TSF: relative drift accumulated
/// over an expected drought, max_rel_drift_ppm being the spread of the
/// oscillator population (2 * tolerance for a uniform +/-tolerance draw).
[[nodiscard]] double tsf_expected_drift_us(int n, int w, double bp_us,
                                           double max_rel_drift_ppm);

// ------------------------------------------------------------- overhead

struct OverheadModel {
  double beacons_per_second;
  double bytes_per_second;
  /// Storage for one hash chain under the named strategy, in digests.
  std::size_t chain_digests_full;
  std::size_t chain_digests_fractal;  // ceil(log2 n) + 1
  /// Receiver buffer per tracked sender, in bytes (2 beacons + key cache).
  std::size_t receiver_buffer_bytes;
};

/// Paper §3.4's accounting for an SSTSP cell, parameterized.
[[nodiscard]] OverheadModel sstsp_overhead(double bp_us,
                                           std::size_t chain_length,
                                           std::size_t beacon_bytes = 92);

}  // namespace sstsp::analysis
