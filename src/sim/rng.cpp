#include "sim/rng.h"

#include <cmath>

namespace sstsp::sim {

double Rng::normal(double mean, double stddev) {
  // Box-Muller; 1 - uniform() keeps u1 in (0, 1] so log() never sees zero.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  return mean + stddev * mag;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;  // hi >= lo; range==0 means full
  if (range == 0) return (*this)();
  // Lemire's nearly-divisionless method with rejection to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::substream(std::string_view label, std::uint64_t index) const {
  // FNV-1a over the label, folded with the parent state and index through
  // splitmix64 so substreams are decorrelated from the parent and each other.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  std::uint64_t mix = state_[0] ^ rotl(state_[2], 31);
  mix ^= splitmix64(h);
  std::uint64_t idx = index;
  mix ^= splitmix64(idx);
  return Rng{splitmix64(mix)};
}

}  // namespace sstsp::sim
