#include "sim/shard_exec.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace sstsp::sim {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

double ShardWallStats::imbalance() const {
  if (busy_ns.empty()) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const std::uint64_t b : busy_ns) {
    total += b;
    peak = std::max(peak, b);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(busy_ns.size());
  return static_cast<double>(peak) / mean;
}

ShardExecutor::ShardExecutor(const Options& opt, std::uint64_t seed)
    : lookahead_(opt.lookahead) {
  assert(opt.shards >= 1);
  assert(opt.threads >= 1);
  assert(lookahead_ > SimTime::zero());
  shards_.reserve(static_cast<std::size_t>(opt.shards));
  for (int s = 0; s < opt.shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>(seed));
  }
  control_ = std::make_unique<Simulator>(seed);

  const int threads = std::min(opt.threads, opt.shards);
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back([this] {
      std::uint32_t seen = 0;
      for (;;) {
        std::function<void(int)> fn;
        {
          std::unique_lock<std::mutex> lk(m_);
          cv_work_.wait(lk, [&] { return stop_ || round_ != seen; });
          if (stop_) return;
          seen = round_;
          fn = phase_fn_;
        }
        work_loop(seen, fn);
      }
    });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ShardExecutor::claim(std::uint32_t round) {
  std::uint64_t cur = task_slot_.load(std::memory_order_acquire);
  for (;;) {
    if (static_cast<std::uint32_t>(cur >> 32) != round) return -1;
    const auto idx = static_cast<std::uint32_t>(cur & 0xffffffffULL);
    if (idx >= static_cast<std::uint32_t>(shard_count())) return -1;
    const std::uint64_t next =
        (static_cast<std::uint64_t>(round) << 32) | (idx + 1);
    if (task_slot_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return static_cast<int>(idx);
    }
  }
}

void ShardExecutor::work_loop(std::uint32_t round,
                              const std::function<void(int)>& fn) {
  for (;;) {
    const int s = claim(round);
    if (s < 0) return;
    const std::uint64_t t0 = collect_wall_ ? now_ns() : 0;
    fn(s);
    if (collect_wall_) {
      // Each task writes only its own shard's slot; no two tasks of a round
      // share an index, so this is race-free without atomics.
      wall_stats_.busy_ns[static_cast<std::size_t>(s)] += now_ns() - t0;
    }
    std::lock_guard<std::mutex> lk(m_);
    if (++done_count_ == shard_count()) cv_done_.notify_all();
  }
}

void ShardExecutor::run_phase(const std::function<void(int)>& fn) {
  const int shards = shard_count();
  const std::uint64_t phase_t0 = collect_wall_ ? now_ns() : 0;
  if (collect_wall_) busy_before_ = wall_stats_.busy_ns;
  if (workers_.empty()) {
    // threads == 1 (or a single shard): dispatch in-order on this thread,
    // no synchronization at all.
    for (int s = 0; s < shards; ++s) {
      const std::uint64_t t0 = collect_wall_ ? now_ns() : 0;
      fn(s);
      if (collect_wall_) {
        wall_stats_.busy_ns[static_cast<std::size_t>(s)] += now_ns() - t0;
      }
    }
  } else {
    std::uint32_t round = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      phase_fn_ = fn;
      done_count_ = 0;
      round = ++round_;
      task_slot_.store(static_cast<std::uint64_t>(round) << 32,
                       std::memory_order_release);
    }
    cv_work_.notify_all();
    work_loop(round, fn);
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [&] { return done_count_ == shards; });
    }
  }
  if (collect_wall_) {
    const std::uint64_t wall = now_ns() - phase_t0;
    wall_stats_.phase_wall_ns += wall;
    // A shard's barrier wait is the part of the phase wall it did not spend
    // dispatching its own events.
    for (int s = 0; s < shards; ++s) {
      const auto i = static_cast<std::size_t>(s);
      const std::uint64_t busy = wall_stats_.busy_ns[i] - busy_before_[i];
      wall_stats_.wait_ns[i] += wall > busy ? wall - busy : 0;
    }
  }
}

void ShardExecutor::run(SimTime horizon, const ExchangeFn& exchange,
                        const SettleFn& settle, const CommitFn& commit) {
  // Events scheduled exactly at the horizon must still fire (run_until is
  // inclusive), so the open upper bound of the last window is horizon + 1.
  const SimTime cap = horizon + SimTime{1};
  for (;;) {
    SimTime t_min = SimTime::never();
    for (const auto& sh : shards_) {
      t_min = std::min(t_min, sh->next_event_time());
    }
    const SimTime next_control = control_->next_event_time();
    if (t_min > horizon && next_control > horizon) break;

    SimTime end = cap;
    if (t_min < SimTime::never() && t_min + lookahead_ < end) {
      end = t_min + lookahead_;
    }
    if (next_control < end) end = next_control;
    const bool control_due = next_control == end && next_control <= horizon;

    // Phase 1 (parallel): every shard dispatches its events in [.., end).
    run_phase([&](int s) {
      Simulator& sim = *shards_[static_cast<std::size_t>(s)];
      while (sim.next_event_time() < end) sim.step();
    });

    // Phase 2 (serial) + 3 (parallel): cross-shard message exchange and
    // per-shard settlement at the barrier.
    if (exchange) exchange(end);
    if (settle) {
      run_phase([&](int s) { settle(s, end); });
    }
    if (commit) commit(end);

    // Phase 4 (serial): control-timeline events due exactly at the window
    // edge, with every shard clock lined up so their callbacks read a
    // consistent now().
    if (control_due) {
      for (const auto& sh : shards_) sh->advance_to(end);
      control_->run_until(next_control);
    }
    ++windows_;
  }
}

std::uint64_t ShardExecutor::total_events() const {
  std::uint64_t total = control_->events_processed();
  for (const auto& sh : shards_) total += sh->events_processed();
  return total;
}

void ShardExecutor::set_collect_wall_stats(bool on) {
  collect_wall_ = on;
  if (on && wall_stats_.busy_ns.empty()) {
    wall_stats_.busy_ns.assign(shards_.size(), 0);
    wall_stats_.wait_ns.assign(shards_.size(), 0);
  }
}

}  // namespace sstsp::sim
