#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sstsp::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].cancelled = false;
    slots_[slot].in_use = true;
    return slot;
  }
  slots_.push_back(Slot{0, false, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  ++slots_[slot].generation;  // invalidate every outstanding id for the slot
  slots_[slot].in_use = false;
  slots_[slot].cancelled = false;
  free_slots_.push_back(slot);
}

EventId EventQueue::schedule(SimTime at, Callback fn) {
  const std::uint32_t slot = acquire_slot();
  heap_.push_back(Entry{at, next_seq_++, slot, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return make_id(slot, slots_[slot].generation);
}

bool EventQueue::cancel(EventId id) {
  if (id == 0) return false;
  const auto slot = static_cast<std::uint32_t>((id & 0xFFFFFFFFu) - 1);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.in_use || s.generation != generation || s.cancelled) {
    return false;  // fired, cancelled, or never existed
  }
  s.cancelled = true;
  --live_;
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    release_slot(heap_.front().slot);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? SimTime::never() : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  const EventId id = make_id(e.slot, slots_[e.slot].generation);
  release_slot(e.slot);
  --live_;
  return Fired{e.time, id, std::move(e.fn)};
}

}  // namespace sstsp::sim
