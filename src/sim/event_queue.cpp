#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace sstsp::sim {

EventId EventQueue::schedule(SimTime at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // fired, cancelled, or unknown
  cancelled_.insert(id);
  --live_;
  return true;
}

SimTime EventQueue::next_time() const {
  if (live_ == 0) return SimTime::never();
  if (!heap_.empty() && !cancelled_.contains(heap_.front().id)) {
    return heap_.front().time;
  }
  // Head is stale; the earliest live entry is what callers care about.  This
  // path only runs when the next event to fire was cancelled, which is rare.
  SimTime best = SimTime::never();
  for (const Entry& e : heap_) {
    if (pending_.contains(e.id) && e.time < best) best = e.time;
  }
  return best;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  --live_;
  return Fired{e.time, e.id, std::move(e.fn)};
}

}  // namespace sstsp::sim
