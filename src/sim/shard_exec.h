// Conservative sharded execution of a discrete-event simulation.
//
// A ShardExecutor owns S independent Simulator instances ("shards", all
// seeded identically so substream derivation is shard-invariant) plus one
// control Simulator for the run-global timeline (churn, sampling, reference
// departures).  Time advances in lockstep windows under conservative
// lookahead L:
//
//     E_k = min(t_min + L, next_control, horizon + 1 tick)
//
// where t_min is the globally earliest pending shard event.  One window
// dispatches, in parallel, every shard event with time < E_k; at the
// barrier the caller first exchanges cross-shard messages (serial), then
// settles them per shard (parallel), and finally the control simulator runs
// its events due exactly at E_k with every shard clock advanced to E_k.
// The mac-layer exactness argument for why L = min(cca_time, rx_latency_min)
// makes this windowing *physically exact* — not an approximation — lives in
// DESIGN.md §12; this class only enforces the schedule.
//
// Determinism: the worker pool affects which OS thread runs which shard,
// never what a shard computes (shards share no mutable state between
// barriers, and both barrier callbacks run under a strict happens-before
// edge).  Results are therefore bit-identical for any thread count,
// including 1 — with one thread no workers are even spawned and the phases
// degenerate to an in-order loop over shards.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/time_types.h"

namespace sstsp::sim {

/// Wall-clock accounting for the parallel phases; only collected when
/// enabled (ShardExecutor::set_collect_wall_stats), because two clock reads
/// per shard-window are measurable at tens of millions of windows.  These
/// numbers are wall-time-derived and must never feed anything covered by
/// the bit-identity contract (they are surfaced via the profile block).
struct ShardWallStats {
  std::vector<std::uint64_t> busy_ns;  ///< per shard: time inside phase fns
  std::vector<std::uint64_t> wait_ns;  ///< per shard: phase wall - busy
  std::uint64_t phase_wall_ns{0};      ///< total wall across parallel phases

  /// Imbalance of the busiest shard vs the mean busy time (1.0 = balanced).
  [[nodiscard]] double imbalance() const;
};

class ShardExecutor {
 public:
  struct Options {
    int shards{1};
    int threads{1};
    /// Conservative lookahead L.  The caller must derive it from the model
    /// (mac layer: min(cca_time, rx_latency_min)); the executor only
    /// requires L > 0.
    SimTime lookahead{SimTime::from_us(1)};
  };

  ShardExecutor(const Options& opt, std::uint64_t seed);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(int s) { return *shards_[s]; }
  /// Run-global timeline; its events fire between windows, serialized, with
  /// every shard clock advanced to the event time.
  [[nodiscard]] Simulator& control() { return *control_; }

  /// Exchange callback: serial, once per window at the barrier, before
  /// settle.  Receives the window end E (exclusive bound of the window).
  using ExchangeFn = std::function<void(SimTime end)>;
  /// Settle callback: parallel, once per (shard, window) after exchange.
  using SettleFn = std::function<void(int shard, SimTime end)>;
  /// Commit callback: serial, once per window after every settle returned
  /// (cross-shard aggregation of the window's settlement results).
  using CommitFn = std::function<void(SimTime end)>;

  /// Advances shards + control through `horizon` (events at exactly the
  /// horizon still fire, matching Simulator::run_until).
  void run(SimTime horizon, const ExchangeFn& exchange, const SettleFn& settle,
           const CommitFn& commit);

  /// Sum of events dispatched by every shard plus the control timeline.
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

  void set_collect_wall_stats(bool on);
  [[nodiscard]] const ShardWallStats& wall_stats() const {
    return wall_stats_;
  }

 private:
  void run_phase(const std::function<void(int)>& fn);
  void work_loop(std::uint32_t round, const std::function<void(int)>& fn);
  /// Claims the next shard index of `round`; -1 when the round is drained
  /// or a newer round has started (a straggler from the previous phase can
  /// never steal work from the current one).
  int claim(std::uint32_t round);

  SimTime lookahead_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::unique_ptr<Simulator> control_;
  std::uint64_t windows_{0};

  // Worker pool (empty when threads == 1).
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint32_t round_{0};              // guarded by m_
  std::function<void(int)> phase_fn_;   // guarded by m_ (set), read per round
  int done_count_{0};                   // guarded by m_
  bool stop_{false};                    // guarded by m_
  /// (round << 32) | next-task-index, claimed by CAS so a stale worker
  /// observing an old round cannot acquire a task of the new one.
  std::atomic<std::uint64_t> task_slot_{0};

  bool collect_wall_{false};
  ShardWallStats wall_stats_;
  std::vector<std::uint64_t> busy_before_;  ///< scratch, per-phase snapshot
};

}  // namespace sstsp::sim
