// Discrete-event simulation driver.
//
// Owns the master clock and the event queue; everything else in the library
// (channel, stations, attackers, metric probes) schedules callbacks here.
// The simulator is strictly single-threaded per instance — parallelism in
// this project lives one level up, in runner::Sweep, which runs independent
// Simulator instances on a thread pool (one scenario per task, no shared
// mutable state), following the explicit-parallelism discipline of the HPC
// guides.
#pragma once

#include <cstdint>

#include "obs/profiler.h"
#include "obs/sampler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time_types.h"

namespace sstsp::obs {
class Instruments;
}  // namespace sstsp::obs

namespace sstsp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : root_rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; clamps scheduling into the past
  /// to `now` (fires next, preserving causality).
  EventId at(SimTime when, EventQueue::Callback fn);

  /// Schedules `fn` after a relative delay from now.
  EventId after(SimTime delay, EventQueue::Callback fn) {
    return at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the horizon is passed.  Events
  /// scheduled exactly at the horizon still fire.
  void run_until(SimTime horizon);

  /// Runs a single event if one is pending before or at `horizon`.
  /// Returns false when nothing fired.
  bool step(SimTime horizon = SimTime::never());

  /// Moves the clock forward to `t` without dispatching anything; no-op when
  /// t <= now.  Used by the sharded kernel (sim::ShardExecutor) to line all
  /// shard clocks up on a window barrier before control-timeline events run,
  /// so callbacks that read now() observe the barrier instant and not the
  /// shard's last-dispatched event time.  Precondition: no pending event is
  /// earlier than `t` (the window scheduler guarantees this).
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Time of the earliest pending event, SimTime::never() when the queue is
  /// empty.  Used by the live-stack reactor (net::Reactor) to compute how
  /// long it may sleep in poll() before the next timer is due.  Non-const
  /// because the queue compacts cancelled heads as a side effect.
  [[nodiscard]] SimTime next_event_time() { return queue_.next_time(); }

  [[nodiscard]] std::size_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  /// Root RNG of the scenario; consumers should derive substreams rather
  /// than draw from it directly (see sim::Rng::substream).
  [[nodiscard]] const Rng& root_rng() const { return root_rng_; }
  [[nodiscard]] Rng substream(std::string_view label,
                              std::uint64_t index) const {
    return root_rng_.substream(label, index);
  }

  /// Observability hooks (both may be nullptr, the default): the profiler
  /// wraps every dispatched callback in an event-dispatch span; the
  /// instruments record the queue depth seen at each dispatch.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] obs::Profiler* profiler() const { return profiler_; }
  void set_instruments(obs::Instruments* instruments) {
    instruments_ = instruments;
  }

  /// Phase-sampler hook (may be nullptr, the default): ticked once per
  /// dispatched event with the virtual time and queue depth; the sampler
  /// itself decides when a tick becomes a sample (obs/sampler.h).
  void set_phase_sampler(obs::PhaseSampler* sampler) { sampler_ = sampler; }

 private:
  EventQueue queue_;
  SimTime now_{SimTime::zero()};
  Rng root_rng_;
  std::size_t processed_{0};
  obs::Profiler* profiler_{nullptr};
  obs::Instruments* instruments_{nullptr};
  obs::PhaseSampler* sampler_{nullptr};
};

}  // namespace sstsp::sim
