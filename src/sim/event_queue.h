// Priority event queue for the discrete-event kernel.
//
// A binary heap keyed by (time, sequence number).  The sequence number gives
// FIFO ordering among simultaneous events, which keeps runs deterministic.
//
// Cancellation is lazy, with no hash tables on the per-event path: every
// scheduled event owns a slot in a slot vector, and the EventId handed back
// to callers packs (slot index, generation).  cancel() flips a tombstone bit
// in the slot (O(1)); a tombstoned heap entry is discarded when it reaches
// the head (pop()/next_time() compact cancelled heads away), so pop() stays
// amortized O(log n) and next_time() never degrades to a linear scan.  Slot
// generations are bumped on release, so a stale EventId (already fired or
// cancelled) can never alias a newer event.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time_types.h"

namespace sstsp::sim {

/// Opaque handle identifying a scheduled event; 0 is never issued.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to fire at `at`.  Returns a handle usable with cancel().
  EventId schedule(SimTime at, Callback fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; SimTime::never() when empty.
  /// Compacts cancelled entries off the heap head as a side effect (which
  /// is why it is not const); amortized O(log n) per cancelled event.
  [[nodiscard]] SimTime next_time();

  /// Pops the earliest pending event.  Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// One slot per in-heap event.  `generation` advances every time the slot
  /// is released (fired or cancelled entry popped), invalidating old ids;
  /// `cancelled` is the tombstone the heap head check reads.
  struct Slot {
    std::uint32_t generation{0};
    bool cancelled{false};
    bool in_use{false};
  };

  [[nodiscard]] static EventId make_id(std::uint32_t slot,
                                       std::uint32_t generation) {
    // +1 keeps 0 reserved for "no event" even for slot 0 / generation 0.
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }

  void drop_cancelled_head();
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
};

}  // namespace sstsp::sim
