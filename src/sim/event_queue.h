// Priority event queue for the discrete-event kernel.
//
// A binary heap keyed by (time, sequence number).  The sequence number gives
// FIFO ordering among simultaneous events, which keeps runs deterministic.
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// when popped, so cancel() is O(1) and pop() stays amortized O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time_types.h"

namespace sstsp::sim {

/// Opaque handle identifying a scheduled event; 0 is never issued.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to fire at `at`.  Returns a handle usable with cancel().
  EventId schedule(SimTime at, Callback fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; SimTime::never() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops the earliest pending event.  Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet fired/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled, still in the heap
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::size_t live_{0};
};

}  // namespace sstsp::sim
