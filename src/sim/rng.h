// Deterministic random number generation for the simulator.
//
// xoshiro256++ (Blackman & Vigna) seeded through splitmix64, with helpers for
// the distributions the protocols need.  Every stochastic component of a
// scenario (per-node clock drift, contention slots, packet-error draws, churn
// selection) draws from its own derived substream so that adding or removing
// one consumer never perturbs the others — a prerequisite for the
// bit-reproducibility invariant tested in tests/sim_determinism_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace sstsp::sim {

/// splitmix64 step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo random generator.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() : Rng(0xD1CEB01DDEADBEEFULL) {}

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return UINT64_MAX; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive, unbiased (Lemire rejection).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Gaussian draw (Box-Muller).  Consumes two uniforms per call; callers
  /// needing substream isolation should derive one via substream() first.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Derive an independent substream keyed by (label, index).  The label is
  /// hashed (FNV-1a) so call sites read as rng.substream("drift", node_id).
  [[nodiscard]] Rng substream(std::string_view label,
                              std::uint64_t index) const;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sstsp::sim
