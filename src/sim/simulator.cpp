#include "sim/simulator.h"

#include <utility>

#include "obs/instruments.h"

namespace sstsp::sim {

EventId Simulator::at(SimTime when, EventQueue::Callback fn) {
  if (when < now_) when = now_;
  return queue_.schedule(when, std::move(fn));
}

bool Simulator::step(SimTime horizon) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > horizon) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++processed_;
  if (instruments_ != nullptr) instruments_->on_dispatch(queue_.size());
  if (sampler_ != nullptr) sampler_->on_dispatch(now_.to_sec(), queue_.size());
  obs::Span span(profiler_, obs::Phase::kDispatch);
  fired.fn();
  return true;
}

void Simulator::run_until(SimTime horizon) {
  while (step(horizon)) {
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace sstsp::sim
