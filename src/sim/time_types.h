// Time representation for the discrete-event simulator.
//
// Simulation ("real" / wall) time is an integer count of picoseconds so that
// event ordering is exact and runs are bit-reproducible.  Clock *readings*
// (what a station observes on its hardware counter) are expressed in
// microseconds, matching the 1 us resolution of the IEEE 802.11 TSF timer;
// analysis code uses double microseconds where sub-tick precision matters.
//
// The picosecond range of int64 covers +/- 106 days, far beyond the 1000 s
// horizon of every experiment in the paper.
#pragma once

#include <cstdint>
#include <compare>

namespace sstsp::sim {

/// Integer picoseconds since simulation start.  A plain strong typedef with
/// explicit conversion helpers; arithmetic stays in int64 space.
struct SimTime {
  std::int64_t ps{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t picoseconds) : ps(picoseconds) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  /// Largest representable instant; used as "never" by the event queue.
  [[nodiscard]] static constexpr SimTime never() {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] static constexpr SimTime from_ps(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime from_ns(std::int64_t v) {
    return SimTime{v * 1'000};
  }
  [[nodiscard]] static constexpr SimTime from_us(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  [[nodiscard]] static constexpr SimTime from_sec(std::int64_t v) {
    return SimTime{v * 1'000'000'000'000};
  }
  /// Nearest-picosecond conversion from a floating-point microsecond value.
  [[nodiscard]] static SimTime from_us_double(double us);
  /// Nearest-picosecond conversion from a floating-point second value.
  [[nodiscard]] static SimTime from_sec_double(double sec);

  [[nodiscard]] constexpr double to_us() const {
    return static_cast<double>(ps) * 1e-6;
  }
  [[nodiscard]] constexpr double to_sec() const {
    return static_cast<double>(ps) * 1e-12;
  }
  /// TSF-style truncation to whole microseconds.
  [[nodiscard]] constexpr std::int64_t to_us_floor() const {
    // ps is non-negative in every simulation path, but keep floor semantics
    // for negative intermediate differences.
    const std::int64_t q = ps / 1'000'000;
    return (ps % 1'000'000 < 0) ? q - 1 : q;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    ps += d.ps;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    ps -= d.ps;
    return *this;
  }
};

[[nodiscard]] constexpr SimTime operator+(SimTime a, SimTime b) {
  return SimTime{a.ps + b.ps};
}
[[nodiscard]] constexpr SimTime operator-(SimTime a, SimTime b) {
  return SimTime{a.ps - b.ps};
}
[[nodiscard]] constexpr SimTime operator*(SimTime a, std::int64_t n) {
  return SimTime{a.ps * n};
}
[[nodiscard]] constexpr SimTime operator*(std::int64_t n, SimTime a) {
  return a * n;
}

namespace literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::from_us(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::from_ms(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_sec(unsigned long long v) {
  return SimTime::from_sec(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace sstsp::sim
