#include "sim/time_types.h"

#include <cmath>

namespace sstsp::sim {

SimTime SimTime::from_us_double(double us) {
  return SimTime{static_cast<std::int64_t>(std::llround(us * 1e6))};
}

SimTime SimTime::from_sec_double(double sec) {
  return SimTime{static_cast<std::int64_t>(std::llround(sec * 1e12))};
}

}  // namespace sstsp::sim
